"""The sweep service's Prometheus instrument set.

:class:`ServiceInstruments` owns the event-driven instruments the
service updates on its hot path (HTTP request counts and latency,
in-flight gauges, sweep request-latency and queue-wait histograms) and
a battery of :class:`~repro.obs.prom.CallbackFamily` families that read
the counters the serve stack *already* maintains — job table, run
provenance totals, coalescer claims, per-tier cache stats, worker
utilization — at render time, so nothing is double-counted.

``GET /v1/metrics?format=prometheus`` renders this registry followed by
a generic flattening of the legacy JSON snapshot
(:func:`~repro.obs.prom.render_snapshot`), so both the curated
instruments and every historical metric stay scrapeable.  Metric names
and labels are documented in ``docs/observability.md``.
"""

from __future__ import annotations

from .prom import (
    DEFAULT_LATENCY_BUCKETS,
    CallbackFamily,
    Histogram,
    PromRegistry,
    render_snapshot,
)

#: queue-wait buckets (seconds) — lighter tail than request latency:
#: waits beyond a few seconds mean the worker pool is saturated
QUEUE_WAIT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0)


class ServiceInstruments:
    """Every Prometheus family of one :class:`SweepService`.

    :param service: duck-typed service — needs ``uptime_seconds``,
        ``_service_metrics()``, ``coalescer.as_dict()``, ``cache`` and
        ``executor.last_metrics``.
    :param version: build version for ``repro_build_info``.
    :param wire_schema: wire-schema number for ``repro_build_info``.
    """

    def __init__(self, service, *, version: str = "",
                 wire_schema: int = 0):
        self._service = service
        self.registry = PromRegistry()
        reg = self.registry

        # -- event-driven (hot path) ---------------------------------
        self.http_requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method/route/status")
        self.http_latency = reg.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling latency, by method/route")
        self.http_inflight = reg.gauge(
            "repro_http_requests_in_flight",
            "HTTP requests currently being handled")
        self.request_latency = reg.register(Histogram(
            "repro_sweep_request_latency_seconds",
            "sweep request latency: submission to terminal status",
            buckets=DEFAULT_LATENCY_BUCKETS))
        self.queue_wait = reg.register(Histogram(
            "repro_sweep_queue_wait_seconds",
            "sweep queue wait: submission to first execution",
            buckets=QUEUE_WAIT_BUCKETS))

        # -- callback families (read existing counters) --------------
        reg.gauge("repro_uptime_seconds",
                  "seconds since the service started",
                  callback=lambda: service.uptime_seconds)
        reg.register(CallbackFamily(
            "repro_jobs_submitted_total", "sweep jobs ever submitted",
            "counter", self._jobs_submitted))
        reg.register(CallbackFamily(
            "repro_jobs", "sweep jobs by lifecycle status",
            "gauge", self._jobs_by_status))
        reg.gauge("repro_jobs_in_flight",
                  "sweep jobs queued or running",
                  callback=self._jobs_in_flight)
        reg.register(CallbackFamily(
            "repro_runs_total", "run outcomes by provenance source",
            "counter", self._runs_by_source))
        reg.register(CallbackFamily(
            "repro_coalescer_claims_total",
            "in-flight coalescer claims by kind",
            "counter", self._coalescer_claims))
        reg.gauge("repro_coalescer_inflight",
                  "digests currently being simulated",
                  callback=lambda: service.coalescer.inflight)
        reg.register(CallbackFamily(
            "repro_coalescer_handoffs_total",
            "crashed-owner claims inherited by a follower",
            "counter", self._coalescer_handoffs))
        reg.register(CallbackFamily(
            "repro_batch_refused_total",
            "batched runs that fell back to scalar dispatch, "
            "by entry-guard reason",
            "counter", self._batch_refused))
        reg.register(CallbackFamily(
            "repro_cache_requests_total",
            "cache lookups by tier and result",
            "counter", self._cache_requests))
        reg.register(CallbackFamily(
            "repro_cache_stores_total", "cache stores by tier",
            "counter", self._cache_stores))
        reg.register(CallbackFamily(
            "repro_cache_promotions_total",
            "lower-tier hits promoted into this tier",
            "counter", self._cache_promotions))
        reg.register(CallbackFamily(
            "repro_cache_evictions_total", "cache evictions by tier",
            "counter", self._cache_evictions))
        reg.register(CallbackFamily(
            "repro_worker_utilization",
            "per-worker busy fraction of the last sweep",
            "gauge", self._worker_utilization))
        reg.register(CallbackFamily(
            "repro_build_info", "build metadata (always 1)", "gauge",
            lambda: [({"version": version,
                       "wire_schema": str(wire_schema)}, 1.0)]))

    # -- hot-path hooks --------------------------------------------------

    def observe_http(self, method: str, route: str, status: int,
                     seconds: float) -> None:
        self.http_requests.inc(method=method, route=route,
                               status=str(status))
        self.http_latency.observe(seconds, method=method, route=route)

    def observe_queue_wait(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def observe_request_latency(self, seconds: float) -> None:
        self.request_latency.observe(seconds)

    # -- callbacks -------------------------------------------------------

    def _jobs_submitted(self):
        jobs = self._service._service_metrics()["jobs"]
        yield {}, jobs["submitted"]

    def _jobs_by_status(self):
        jobs = self._service._service_metrics()["jobs"]
        for status, count in sorted(jobs.items()):
            if status != "submitted":
                yield {"status": status}, count

    def _jobs_in_flight(self):
        jobs = self._service._service_metrics()["jobs"]
        return jobs.get("queued", 0) + jobs.get("running", 0)

    def _runs_by_source(self):
        runs = self._service._service_metrics()["runs"]
        for source, count in sorted(runs.items()):
            if source != "total":
                yield {"source": source}, count

    def _coalescer_claims(self):
        doc = self._service.coalescer.as_dict()
        yield {"kind": "owned"}, doc.get("owned", 0)
        yield {"kind": "coalesced"}, doc.get("coalesced", 0)

    def _coalescer_handoffs(self):
        yield {}, getattr(self._service.coalescer, "handoffs", 0)

    def _batch_refused(self):
        refused = getattr(self._service, "_batch_refused", {})
        for reason, count in sorted(refused.items()):
            yield {"reason": reason}, count

    def _tier_stats(self) -> dict:
        cache = self._service.cache
        if cache is None:
            return {}
        tiers = getattr(cache, "tier_stats", None)
        if callable(tiers):
            return tiers()
        tier = getattr(cache, "tier", None) or type(cache).__name__.lower()
        return {tier: cache.stats}

    def _cache_requests(self):
        for tier, stats in sorted(self._tier_stats().items()):
            yield {"tier": tier, "result": "hit"}, stats.hits
            yield {"tier": tier, "result": "miss"}, stats.misses

    def _cache_stores(self):
        for tier, stats in sorted(self._tier_stats().items()):
            yield {"tier": tier}, stats.stores

    def _cache_promotions(self):
        for tier, stats in sorted(self._tier_stats().items()):
            yield {"tier": tier}, getattr(stats, "promotions", 0)

    def _cache_evictions(self):
        for tier, stats in sorted(self._tier_stats().items()):
            yield {"tier": tier}, stats.evictions

    def _worker_utilization(self):
        metrics = getattr(self._service.executor, "last_metrics", None)
        if metrics is None:
            return
        for pid, fraction in metrics.worker_utilization().items():
            yield {"worker": str(pid)}, round(fraction, 4)

    # -- rendering -------------------------------------------------------

    def render(self, *, snapshot: dict | None = None) -> str:
        """The full exposition document (instruments + legacy snapshot)."""
        text = self.registry.render()
        if snapshot is not None:
            text += render_snapshot(snapshot)
        return text
