"""Opt-in execution profiling for sweeps (``--profile``).

When enabled, the executor times each of its phases (digest, cache,
execute) in wall *and* CPU seconds and collects per-run self-time rows,
including the fused-block counters the fast engine reports — so "where
did this sweep spend its time" is answerable from the manifest alone:
:meth:`ExecProfile.as_dict` is folded into ``manifest.json`` under
``"profile"`` and summarized by ``repro obs <dir>``.

Profiling is strictly off-path: nothing here runs unless ``--profile``
was passed, and the collection itself is a handful of clock reads per
phase plus one small record per executed run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTiming:
    """Wall and CPU seconds of one executor phase."""

    name: str
    wall_seconds: float
    cpu_seconds: float

    def as_dict(self) -> dict:
        return {"wall_seconds": round(self.wall_seconds, 6),
                "cpu_seconds": round(self.cpu_seconds, 6)}


@dataclass
class ExecProfile:
    """Per-phase timings plus top-N run self-time for one sweep.

    :ivar top: how many rows the ``top_runs`` / ``top_fused`` tables
        keep (sorted by elapsed seconds and fused-block self-cycles
        respectively).
    """

    top: int = 10
    phases: list[PhaseTiming] = field(default_factory=list)
    runs: list[dict] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str):
        """Time one named phase (wall + CPU)."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.phases.append(PhaseTiming(
                name, time.perf_counter() - wall0,
                time.process_time() - cpu0))

    def note_run(self, label: str, payload: dict | None) -> None:
        """Record one executed run's self-time and engine counters."""
        payload = payload or {}
        engine = payload.get("engine") or {}
        self.runs.append({
            "label": label,
            "elapsed": round(payload.get("elapsed", 0.0), 6),
            "cycles": ((payload.get("run") or {}).get("trace") or {}
                       ).get("cycles", 0),
            "fused_blocks": engine.get("fused_blocks", 0),
            "fused_cycles": engine.get("fused_cycles", 0),
            "mem_fused_ops": engine.get("mem_fused_ops", 0),
        })

    # -- derived ---------------------------------------------------------

    def top_runs(self) -> list[dict]:
        """The ``top`` slowest executed runs by wall seconds."""
        return sorted(self.runs, key=lambda row: -row["elapsed"])[:self.top]

    def top_fused(self) -> list[dict]:
        """The ``top`` runs by fused-block self-time (cycles spent
        inside fused superblocks), with each run's fused share."""
        rows = []
        for row in self.runs:
            if not row["fused_cycles"]:
                continue
            cycles = row["cycles"] or 0
            rows.append({
                "label": row["label"],
                "fused_cycles": row["fused_cycles"],
                "fused_blocks": row["fused_blocks"],
                "fused_share": (round(row["fused_cycles"] / cycles, 4)
                                if cycles else 0.0),
            })
        return sorted(rows, key=lambda r: -r["fused_cycles"])[:self.top]

    def as_dict(self) -> dict:
        """The manifest's ``"profile"`` section."""
        return {
            "phases": {timing.name: timing.as_dict()
                       for timing in self.phases},
            "runs_profiled": len(self.runs),
            "top_runs": self.top_runs(),
            "top_fused": self.top_fused(),
        }

    def report(self) -> str:
        """Human-readable summary (``--profile`` console output and
        ``repro obs``)."""
        lines = ["profile:"]
        for timing in self.phases:
            lines.append(f"  phase {timing.name:8s} "
                         f"{timing.wall_seconds:8.3f}s wall  "
                         f"{timing.cpu_seconds:8.3f}s cpu")
        top = self.top_runs()
        if top:
            lines.append(f"  top {len(top)} runs by self-time:")
            for row in top:
                lines.append(f"    {row['elapsed']:8.3f}s  "
                             f"{row['cycles']:>9d} cycles  {row['label']}")
        fused = self.top_fused()
        if fused:
            lines.append(f"  top {len(fused)} runs by fused-block "
                         "self-time:")
            for row in fused:
                lines.append(
                    f"    {row['fused_cycles']:>9d} fused cycles "
                    f"({row['fused_share']:.0%} of run) over "
                    f"{row['fused_blocks']} blocks  {row['label']}")
        return "\n".join(lines)


def profile_from_dict(doc: dict | None) -> ExecProfile | None:
    """Rehydrate a manifest ``"profile"`` section (for ``repro obs``)."""
    if not doc:
        return None
    profile = ExecProfile()
    for name, timing in (doc.get("phases") or {}).items():
        profile.phases.append(PhaseTiming(
            name, timing.get("wall_seconds", 0.0),
            timing.get("cpu_seconds", 0.0)))
    for row in doc.get("top_runs") or []:
        profile.runs.append({
            "label": row.get("label", "?"),
            "elapsed": row.get("elapsed", 0.0),
            "cycles": row.get("cycles", 0),
            "fused_blocks": row.get("fused_blocks", 0),
            "fused_cycles": row.get("fused_cycles", 0),
            "mem_fused_ops": row.get("mem_fused_ops", 0),
        })
    return profile
