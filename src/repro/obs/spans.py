"""Per-request span trees, rendered as Perfetto trace events.

A :class:`SpanRecorder` collects the spans of **one** traced request as
it crosses the service: the http receive, the job lifetime, the
coalescer claim, the cache-tier lookup, the executor phase and every
per-run execution.  Each span carries a :class:`~repro.obs.context
.TraceContext` (so parentage is explicit) plus free-form args — digest,
cache tier, outcome — and optional *links* to spans in other traces
(a coalesced follower links to the owning submission's span).

The rendering deliberately reuses the repository's existing trace-event
schema: :meth:`SpanRecorder.to_perfetto` emits the same Chrome
trace-event JSON the barrier tracer exports
(:mod:`repro.telemetry.perfetto`) and validates against the same
:func:`~repro.telemetry.perfetto.validate_trace` checker, with one
track (``tid``) per pipeline stage.  ``GET /v1/sweeps/{id}/trace``
serves exactly this payload — open it in ``ui.perfetto.dev`` next to a
barrier trace.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .context import TraceContext

#: trace-event process id for the serving stack (the platform's barrier
#: exporter uses pid 1; keeping them distinct lets both trees coexist
#: in one viewer session)
SERVICE_PID = 2

#: one track per pipeline stage, in request-flow order
STAGE_TIDS = {
    "http": 0,
    "job": 1,
    "coalesce": 2,
    "cache": 3,
    "execute": 4,
    "run": 5,
}
_OTHER_TID = 9


@dataclass
class Span:
    """One named interval in a request's lifecycle."""

    name: str
    stage: str                      #: one of :data:`STAGE_TIDS` (or free)
    context: TraceContext
    start: float                    #: epoch seconds
    end: float | None = None
    args: dict = field(default_factory=dict)
    #: span ids in *other* traces this span rode on (coalesce links)
    links: list = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.end is None


class SpanRecorder:
    """Thread-safe collector for one request's span tree.

    Jobs execute on worker threads while the event loop answers
    ``/trace`` requests, so every mutation and the export snapshot
    take the recorder lock.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or TraceContext.new().trace_id
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    # -- recording -------------------------------------------------------

    def _context_for(self, parent: TraceContext | None) -> TraceContext:
        if parent is not None:
            return parent.child()
        return TraceContext(self.trace_id,
                            TraceContext.new().span_id)

    def begin(self, name: str, stage: str,
              parent: TraceContext | None = None, **args) -> Span:
        """Open a span now; finish it with :meth:`finish`."""
        span = Span(name, stage, self._context_for(parent), time.time(),
                    args=dict(args))
        with self._lock:
            self._spans.append(span)
        return span

    def finish(self, span: Span, **args) -> Span:
        """Close an open span (idempotent) and merge extra args."""
        with self._lock:
            if span.end is None:
                span.end = time.time()
            if args:
                span.args.update(args)
        return span

    @contextmanager
    def span(self, name: str, stage: str,
             parent: TraceContext | None = None, **args):
        """``with recorder.span(...) as span:`` — closed on exit."""
        entry = self.begin(name, stage, parent, **args)
        try:
            yield entry
        finally:
            self.finish(entry)

    def record(self, name: str, stage: str,
               parent: TraceContext | None, start: float, end: float,
               args: dict | None = None,
               links: list | None = None) -> Span:
        """Append a fully-formed (already finished) span."""
        span = Span(name, stage, self._context_for(parent), start, end,
                    args=dict(args or {}), links=list(links or []))
        with self._lock:
            self._spans.append(span)
        return span

    def spans(self) -> list[Span]:
        """Snapshot of the recorded spans (copy; safe to iterate)."""
        with self._lock:
            return list(self._spans)

    # -- export ----------------------------------------------------------

    def to_perfetto(self, *, meta: dict | None = None) -> dict:
        """The request's span tree as Chrome trace-event JSON.

        Validates against the same schema checker the barrier exporter
        uses (:func:`repro.telemetry.perfetto.validate_trace`): one
        ``X`` event per span on its stage's track, timestamps in
        microseconds relative to the earliest span, durations clamped
        to stay positive, and ``thread_name`` metadata naming the
        stages.  Open spans are clamped at export time (live traces of
        running jobs stay valid).
        """
        snapshot = self.spans()
        now = time.time()
        base = min((span.start for span in snapshot), default=now)
        events: list[dict] = [{
            "ph": "M", "pid": SERVICE_PID, "tid": 0,
            "name": "process_name", "args": {"name": "repro serve"},
        }]
        for stage, tid in STAGE_TIDS.items():
            events.append({"ph": "M", "pid": SERVICE_PID, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": stage}})
        for span in snapshot:
            end = span.end if span.end is not None else now
            ts = max((span.start - base) * 1e6, 0.0)
            dur = max((end - span.start) * 1e6, 0.001)
            args = {
                "trace_id": span.context.trace_id,
                "span_id": span.context.span_id,
            }
            if span.context.parent_id is not None:
                args["parent_span_id"] = span.context.parent_id
            if span.links:
                args["links"] = list(span.links)
            if span.open:
                args["open"] = True
            args.update(span.args)
            events.append({
                "ph": "X", "pid": SERVICE_PID,
                "tid": STAGE_TIDS.get(span.stage, _OTHER_TID),
                "name": span.name, "cat": span.stage,
                "ts": round(ts, 3), "dur": round(dur, 3),
                "args": args,
            })
        events.sort(key=lambda e: (e.get("ts", -1.0), e["tid"]))
        other = {"trace_id": self.trace_id, "spans": len(snapshot)}
        if meta:
            other.update(meta)
        return {
            "displayTimeUnit": "ms",
            "otherData": other,
            "traceEvents": events,
        }
