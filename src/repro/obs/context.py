"""Trace identity: W3C ``traceparent``-style contexts.

A :class:`TraceContext` is the identity one request carries across
every hop of the sweep stack: 32 hex chars of ``trace_id`` naming the
whole request, 16 hex chars of ``span_id`` naming one operation within
it.  The header form is the W3C Trace Context ``traceparent`` layout
(``00-{trace_id}-{span_id}-{flags}``), so any W3C-speaking proxy or
collector can join the propagation chain; the wire form is a small JSON
object embedded in ``sweep_spec`` documents for clients whose transport
strips headers.

Contexts are immutable; :meth:`TraceContext.child` derives the context
of a sub-operation (fresh ``span_id``, same ``trace_id``, parent link
preserved), which is how the service grows one span tree per request.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")
_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID = re.compile(r"^[0-9a-f]{16}$")


def _random_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One trace/span identity (immutable).

    :ivar trace_id: 32 lowercase hex chars naming the whole request.
    :ivar span_id: 16 lowercase hex chars naming this operation.
    :ivar parent_id: the ``span_id`` of the operation that spawned this
        one (``None`` for a root or a remote parent).
    :ivar sampled: the W3C ``sampled`` flag; carried, never interpreted
        (the service records every request).
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None
    sampled: bool = True

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (random trace and span ids)."""
        return cls(_random_hex(16), _random_hex(8))

    def child(self) -> "TraceContext":
        """The context of a sub-operation: new span, same trace."""
        return TraceContext(self.trace_id, _random_hex(8),
                            parent_id=self.span_id, sampled=self.sampled)

    # -- header form (W3C traceparent) -----------------------------------

    def traceparent(self) -> str:
        """The ``traceparent`` header value for this context."""
        return (f"00-{self.trace_id}-{self.span_id}-"
                f"{'01' if self.sampled else '00'}")

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` on anything bogus.

        Tolerant by design — a malformed header means "no propagated
        context", never an error, per the W3C processing rules.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        version, trace_id, span_id, flags = match.groups()
        if version == "ff":
            return None                      # forbidden version value
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None                      # all-zero ids are invalid
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 0x01))

    # -- wire form (sweep_spec "trace" field) ----------------------------

    def to_wire(self) -> dict:
        """The optional ``trace`` field of a ``sweep_spec`` document."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, doc) -> "TraceContext | None":
        """Parse the wire form; ``None`` when absent or malformed."""
        if not isinstance(doc, dict):
            return None
        trace_id = doc.get("trace_id")
        span_id = doc.get("span_id")
        if (not isinstance(trace_id, str)
                or _TRACE_ID.match(trace_id) is None):
            return None
        if not isinstance(span_id, str) or _SPAN_ID.match(span_id) is None:
            return None
        return cls(trace_id, span_id)
