"""Job model for the sweep executor.

A :class:`RunRequest` is a *pure, pickle-able description* of one
simulation: which benchmark image to build, which platform to build, and
which inputs to feed it.  Executing a request anywhere — this process, a
pool worker, a different machine — produces the same
:class:`~repro.kernels.suite.BenchmarkRun`, which is what makes results
content-addressable: :func:`request_digest` hashes everything the run
depends on (the *built* program image, the full platform configuration,
the materialized input channels and the package version), so a cache hit
is a proof that recomputation would be identical.

:class:`SweepSpec` is an ordered bag of requests — the unit the
scheduler (:mod:`repro.exec.scheduler`) fans out across workers.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

from .. import __version__
from ..compiler import compile_source
from ..cpu import vec
from ..dsp import generate_ecg
from ..dsp.ecg import EcgConfig
from ..isa.program import Program
from ..kernels import BENCHMARKS, Design, golden_outputs, run_benchmark
from ..kernels.suite import build_program, collect_benchmark, \
    prepare_benchmark
from ..platform import PlatformConfig

#: cache-entry / payload schema; bump on incompatible layout changes
#: (2: added the ``engine`` fast-path engagement counters)
#: (3: ``engine`` gained the batched-vector counters and batched
#: payloads carry ``batch_size``)
#: (4: ``engine`` gained the memory-fusion counters — ``mem_fused_blocks``
#: / ``mem_fused_ops`` — and the block-termination census ``term_*``)
#: (5: ``engine`` gained the predication counters — ``pred_blocks`` /
#: ``pred_cycles`` / ``pred_aborts`` — and batched payloads carry
#: ``batch_refused``: the entry-guard reason when a run silently fell
#: back to scalar dispatch inside its batch)
SCHEMA = 5

DEFAULT_SAMPLES = 64
DEFAULT_SEED = 2013


class RunTimeout(Exception):
    """A run exceeded its per-run wall-clock budget."""


@dataclass(frozen=True)
class RunRequest:
    """Everything one simulation run is a function of.

    :ivar benchmark: bundled benchmark name (``BENCHMARKS`` key).
    :ivar design: hardware/software design pair; decides the program
        flavour (sync points or not) and the default platform policy.
    :ivar config: full platform override for ablations (core count,
        banking, broadcast, policy).  ``None`` means
        ``design.platform_config(num_cores)``.
    :ivar n_samples: per-channel evaluation window.
    :ivar seed: ECG generator seed (shorthand for ``ecg``).
    :ivar ecg: full ECG generator parameters; ``None`` means
        ``EcgConfig(seed=seed)``.  The cache key hashes the *generated
        samples*, so any parameter change — including a changed
        ``EcgConfig`` field default — changes the key.
    :ivar channels: explicit input override (one tuple per core); when
        set, the ECG parameters are ignored.
    :ivar sync_mode: minic sync-insertion override (``'auto'``/``'all'``/
        ``'none'``); ``None`` uses the design default.
    :ivar sync_min_statements: minic checkpoint-density threshold.
    :ivar fast_engine: engine selection (bit-exact either way).
    :ivar max_cycles: simulation safety bound.
    :ivar verify: check outputs against the golden model in the worker.
    """

    benchmark: str
    design: Design
    config: PlatformConfig | None = None
    n_samples: int = DEFAULT_SAMPLES
    num_cores: int = 8
    seed: int = DEFAULT_SEED
    ecg: EcgConfig | None = None
    channels: tuple[tuple[int, ...], ...] | None = None
    sync_mode: str | None = None
    sync_min_statements: int = 0
    fast_engine: bool = True
    max_cycles: int = 50_000_000
    verify: bool = True

    @property
    def label(self) -> str:
        """Short human-readable name for progress lines."""
        cores = self.platform_config().num_cores
        extras = []
        if self.sync_mode is not None:
            extras.append(f"mode={self.sync_mode}")
        if self.sync_min_statements:
            extras.append(f"min={self.sync_min_statements}")
        if self.config is not None:
            if self.config.dm_interleaved:
                extras.append("interleaved")
            if not (self.config.im_broadcast and self.config.dm_broadcast):
                extras.append("no-bcast")
        suffix = f" [{','.join(extras)}]" if extras else ""
        return (f"{self.benchmark} {self.design.name} "
                f"c{cores} n{self.n_samples}{suffix}")

    def platform_config(self) -> PlatformConfig:
        return self.config or self.design.platform_config(self.num_cores)

    def ecg_config(self) -> EcgConfig:
        return self.ecg or EcgConfig(seed=self.seed)

    def to_key(self) -> tuple:
        """Stable identity tuple (hashable; independent of repr/pickle)."""
        return ("RunRequest", self.benchmark, self.design.to_key(),
                self.platform_config().to_key(), self.n_samples,
                self.ecg_config() if self.channels is None else None,
                self.channels, self.sync_mode, self.sync_min_statements,
                self.fast_engine, self.max_cycles, self.verify)

    def to_wire(self) -> dict:
        """Versioned JSON wire document (see ``docs/wire_schema.md``)."""
        from .wire import request_to_wire

        return request_to_wire(self)

    @classmethod
    def from_wire(cls, doc: dict) -> "RunRequest":
        """Inverse of :meth:`to_wire`; raises
        :class:`~repro.exec.wire.WireError` on malformed documents."""
        from .wire import request_from_wire

        return request_from_wire(doc)


@dataclass(frozen=True)
class SweepSpec:
    """An ordered set of runs executed (and reported) as one sweep."""

    name: str
    requests: tuple[RunRequest, ...]

    def __iter__(self):
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def to_wire(self, *, trace=None) -> dict:
        """Versioned JSON wire document (see ``docs/wire_schema.md``).

        :param trace: optional trace context to embed (see
            :func:`~repro.exec.wire.spec_to_wire`).
        """
        from .wire import spec_to_wire

        return spec_to_wire(self, trace=trace)

    @classmethod
    def from_wire(cls, doc: dict) -> "SweepSpec":
        """Inverse of :meth:`to_wire`; raises
        :class:`~repro.exec.wire.WireError` on malformed documents."""
        from .wire import spec_from_wire

        return spec_from_wire(doc)

    @classmethod
    def grid(cls, name: str, benchmarks, designs, *,
             samples=(DEFAULT_SAMPLES,), seed: int = DEFAULT_SEED,
             **common) -> "SweepSpec":
        """The classic evaluation product: samples x benchmark x design."""
        requests = tuple(
            RunRequest(benchmark=bench, design=design, n_samples=n,
                       seed=seed, **common)
            for n in samples for bench in benchmarks for design in designs)
        return cls(name, requests)


# ---------------------------------------------------------------------------
# Request resolution (runs in the worker; memoized per process, so pool
# workers reuse built images and generated inputs across tasks)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=128)
def _build_minic(benchmark: str, sync_mode: str,
                 sync_min_statements: int) -> tuple[Program, int]:
    bench = BENCHMARKS[benchmark]
    result = compile_source(bench.source, sync_mode=sync_mode,
                            sync_min_statements=sync_min_statements,
                            synclint="off")
    return result.program, result.sync_points


def resolve_program(request: RunRequest) -> tuple[Program, int | None]:
    """Build (or fetch the per-process cached) image for a request.

    :returns: ``(program, sync_points)``; ``sync_points`` is ``None``
        for assembly kernels, where the compiler never counts them.
    """
    bench = BENCHMARKS[request.benchmark]
    if bench.kind == "minic":
        mode = request.sync_mode
        if mode is None:
            mode = "auto" if request.design.sync_enabled else "none"
        return _build_minic(request.benchmark, mode,
                            request.sync_min_statements)
    if request.sync_mode is not None or request.sync_min_statements:
        raise ValueError(
            f"{request.benchmark} is assembly: sync_mode / "
            "sync_min_statements overrides only apply to minic kernels")
    return build_program(request.benchmark,
                         request.design.sync_enabled), None


_channel_memo: dict[tuple[int, EcgConfig], list[list[int]]] = {}


def resolve_channels(request: RunRequest) -> list[list[int]]:
    """Materialize the per-core input channels for a request.

    Generated inputs always come from an 8-lead recording sliced to the
    platform's core count, so an ``n``-core run sees the same leads as
    the first ``n`` cores of the 8-core run (the convention every
    ablation in ``benchmarks/`` relies on).
    """
    cores = request.platform_config().num_cores
    if request.channels is not None:
        if len(request.channels) < cores:
            raise ValueError(
                f"request supplies {len(request.channels)} channels for "
                f"{cores} cores")
        return [list(channel) for channel in request.channels[:cores]]
    key = (request.n_samples, request.ecg_config())
    if key not in _channel_memo:
        if len(_channel_memo) >= 32:
            _channel_memo.pop(next(iter(_channel_memo)))
        recording = generate_ecg(n_channels=8, n_samples=request.n_samples,
                                 config=key[1])
        _channel_memo[key] = [recording.channel(c) for c in range(8)]
    return [list(channel) for channel in _channel_memo[key][:cores]]


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def program_digest(program: Program) -> str:
    """Content hash of a built image: code, data, symbols, entry.

    Thin wrapper over :meth:`Program.digest` (which owns the hash and
    caches it per image) — the same key the fused-superblock cache
    (:mod:`repro.cpu.blocks`) uses, so one digest computation serves
    both the result cache and the block cache.
    """
    return program.digest()


def request_digest(request: RunRequest, *, version: str | None = None) -> str:
    """Content address of one run.

    Hashes the *resolved* inputs — the built program image and the
    materialized channel samples — plus the platform configuration and
    the package version, so a digest match means "the bits this run
    consumes are identical".  Compiler changes, kernel-source edits, ECG
    parameter changes and package upgrades all change the digest without
    any of them having to be listed here explicitly.
    """
    program, _ = resolve_program(request)
    channels = resolve_channels(request)
    doc = {
        "schema": SCHEMA,
        "version": version if version is not None else __version__,
        "benchmark": request.benchmark,
        "design": request.design.to_json(),
        "config": request.platform_config().to_json(),
        "program": program_digest(program),
        "channels": hashlib.sha256(
            json.dumps(channels, separators=(",", ":")).encode()
        ).hexdigest(),
        "n_samples": request.n_samples,
        "sync_mode": request.sync_mode,
        "sync_min_statements": request.sync_min_statements,
        "fast_engine": request.fast_engine,
        "max_cycles": request.max_cycles,
        "verify": request.verify,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`RunTimeout` if the block runs longer than ``seconds``.

    Implemented with ``SIGALRM`` so it interrupts the simulation loop
    itself; only usable in a main thread on POSIX, and silently skipped
    elsewhere (the ``max_cycles`` bound still applies).
    """
    usable = (seconds is not None and seconds > 0
              and hasattr(signal, "setitimer")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:.3g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_request(request: RunRequest, *,
                    timeout: float | None = None) -> dict:
    """Run one request to completion; returns the cacheable payload.

    Pure with respect to the request: the payload's ``run`` /
    ``sync_points`` / ``golden_match`` fields depend only on the request
    contents (``elapsed`` and ``worker`` are bookkeeping and excluded
    from differential comparison).
    """
    start = time.perf_counter()
    program, sync_points = resolve_program(request)
    channels = resolve_channels(request)
    with _deadline(timeout):
        run = run_benchmark(request.benchmark, request.design, channels,
                            max_cycles=request.max_cycles,
                            fast_engine=request.fast_engine,
                            config=request.platform_config(),
                            program=program)
        golden_match = None
        if request.verify:
            golden_match = (run.outputs
                            == golden_outputs(request.benchmark, channels))
    engine = None
    if run.machine is not None and request.fast_engine:
        engine = run.machine.engine_stats.as_dict()
    return {
        "schema": SCHEMA,
        "version": __version__,
        "run": run.to_json(),
        "engine": engine,
        "sync_points": sync_points,
        "golden_match": golden_match,
        "elapsed": round(time.perf_counter() - start, 6),
        "worker": os.getpid(),
    }


# ---------------------------------------------------------------------------
# Batched execution (array-of-machines, repro.cpu.vec)
# ---------------------------------------------------------------------------

def batch_key(request: RunRequest):
    """Coalescing key: requests with equal keys may run as one batch.

    Two requests can share an array-of-machines batch when they run the
    *same built image* on the *same platform* with the same cycle bound
    — their inputs (channels, ``n_samples``, seed) are free to differ,
    that is the batch axis.  Returns ``None`` when the request cannot be
    batched at all (reference engine requested, or NumPy unavailable),
    in which case the scheduler dispatches it individually.
    """
    if not request.fast_engine or not vec.AVAILABLE:
        return None
    try:
        program, _ = resolve_program(request)
    except Exception:
        return None             # the individual run will report the error
    return (program_digest(program), request.platform_config().to_key(),
            request.max_cycles)


def _isolated(request: RunRequest,
              timeout: float | None) -> tuple[dict | None, str | None]:
    try:
        return execute_request(request, timeout=timeout), None
    except Exception as exc:
        return None, f"{type(exc).__name__}: {exc}"


def execute_batch(requests, *, timeout: float | None = None,
                  trace_id: str | None = None
                  ) -> list[tuple[dict | None, str | None]]:
    """Run a family of same-:func:`batch_key` requests as one batch.

    The machines are prepared together, advanced in vectorized lockstep
    by :func:`repro.cpu.vec.run_batch`, then finished and verified
    individually — each with its own error isolation, so one bad run
    (cycle limit, timeout) never sinks its batch-mates.  Results are
    bit-identical to :func:`execute_request` per request; the payloads
    additionally carry ``batch_size`` and split the shared vector-phase
    wall time evenly across ``elapsed`` fields.

    A run the batch entry guard refuses still completes — it just falls
    back to scalar dispatch inside the batch.  That fallback is never
    silent: the payload carries the guard's reason as ``batch_refused``
    and a ``batch.refused`` record (tagged with ``trace_id``) goes to
    the structured log, so the metrics plane can count
    ``batch_refused{reason=...}``.

    The vector phase runs under a pooled deadline of ``timeout x N``; if
    it raises *anything*, the partially-advanced machines are discarded
    and every request re-executes individually from scratch — the batch
    layer can fail, the results cannot (a ``batch.fallback`` record is
    logged).

    :returns: one ``(payload, error)`` pair per request, in order.
    """
    from ..obs.log import emit

    batch = list(requests)
    if len(batch) == 1:
        return [_isolated(batch[0], timeout)]
    start = time.perf_counter()
    limit = min(r.max_cycles for r in batch)
    try:
        prepared = []
        with _deadline(timeout * len(batch) if timeout else None):
            for request in batch:
                program, sync_points = resolve_program(request)
                channels = resolve_channels(request)
                machine, n_samples = prepare_benchmark(
                    request.benchmark, request.design, channels,
                    fast_engine=request.fast_engine,
                    config=request.platform_config(), program=program)
                # same pure check run_batch applies; recorded here so
                # the refusal reason can ride each refused payload
                refused = vec.batch_entry_guard(machine, limit)
                prepared.append((request, channels, machine, n_samples,
                                 sync_points, refused))
            vec.run_batch([entry[2] for entry in prepared], limit=limit)
    except Exception as exc:
        # mid-batch state is not trustworthy after an arbitrary failure
        # (e.g. a timeout signal between two vector ops) — rerun scalar.
        emit("batch.fallback", level=logging.WARNING, trace_id=trace_id,
             runs=len(batch), error=f"{type(exc).__name__}: {exc}")
        return [_isolated(request, timeout) for request in batch]
    for request, _, _, _, _, refused in prepared:
        if refused is not None:
            emit("batch.refused", level=logging.WARNING, trace_id=trace_id,
                 label=request.label, reason=refused)
    share = (time.perf_counter() - start) / len(batch)
    results: list[tuple[dict | None, str | None]] = []
    for request, channels, machine, n_samples, sync_points, refused \
            in prepared:
        own = time.perf_counter()
        try:
            with _deadline(timeout):
                machine.run(max_cycles=request.max_cycles)
                run = collect_benchmark(machine, request.benchmark,
                                        request.design, n_samples)
                golden_match = None
                if request.verify:
                    golden_match = (
                        run.outputs
                        == golden_outputs(request.benchmark, channels))
        except Exception as exc:
            results.append((None, f"{type(exc).__name__}: {exc}"))
            continue
        payload = {
            "schema": SCHEMA,
            "version": __version__,
            "run": run.to_json(),
            "engine": machine.engine_stats.as_dict(),
            "sync_points": sync_points,
            "golden_match": golden_match,
            "batch_size": len(batch),
            "elapsed": round(share + time.perf_counter() - own, 6),
            "worker": os.getpid(),
        }
        if refused is not None:
            payload["batch_refused"] = refused
        results.append((payload, None))
    return results
