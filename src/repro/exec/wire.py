"""Versioned JSON wire schema for the job model (the service contract).

The pickle form of :class:`~repro.exec.job.RunRequest` is an
implementation detail: it ties both ends of a connection to the same
Python build.  The *wire* form defined here is the public contract the
``repro serve`` HTTP API speaks — plain JSON, versioned the same way the
cache-entry ``SCHEMA`` and manifest ``MANIFEST_SCHEMA`` are, and
documented field by field in ``docs/wire_schema.md``.

Every wire document is a JSON object carrying two envelope fields:

``wire_schema``
    The integer schema version (:data:`WIRE_SCHEMA`).  Readers *reject*
    documents whose version differs from their own — an incompatible
    change bumps the number, so a version match is a compatibility
    proof, exactly like the ``SCHEMA`` field on cache entries.

``kind``
    The document type: ``"run_request"``, ``"sweep_spec"`` or
    ``"run_payload"``.

Within a version, readers **ignore unknown fields** (additive optional
fields do not bump the version) and reject missing *required* ones.
Round-trip stability is the load-bearing property: for any request,
``request_digest(from_wire(to_wire(r))) == request_digest(r)`` — the
wire form addresses exactly the same simulation.
"""

from __future__ import annotations

import dataclasses

from ..dsp.ecg import EcgConfig
from ..kernels.suite import Design
from ..platform import PlatformConfig
from .job import SCHEMA, RunRequest, SweepSpec

#: wire-document schema; bump on incompatible layout changes (renamed /
#: removed fields, changed semantics).  Additive optional fields do not
#: bump — readers ignore what they don't know.
#: (2: ``sweep_spec`` documents may carry an optional ``trace`` object
#: — ``{"trace_id", "span_id"}`` — propagating the client's trace
#: context; the version bump marks the observability contract, the
#: field itself stays optional)
WIRE_SCHEMA = 2

_KINDS = ("run_request", "sweep_spec", "run_payload")


class WireError(ValueError):
    """A document failed wire-schema validation."""


def check_envelope(doc, kind: str) -> None:
    """Validate the two envelope fields of one wire document.

    :raises WireError: when ``doc`` is not an object, carries no or an
        unsupported ``wire_schema``, or is of a different ``kind``.
    """
    if not isinstance(doc, dict):
        raise WireError(
            f"wire document must be a JSON object, got "
            f"{type(doc).__name__}")
    version = doc.get("wire_schema")
    if version is None:
        raise WireError("wire document is missing 'wire_schema'")
    if version != WIRE_SCHEMA:
        raise WireError(
            f"unsupported wire_schema {version!r} "
            f"(this build speaks {WIRE_SCHEMA})")
    actual = doc.get("kind")
    if actual != kind:
        raise WireError(f"expected kind {kind!r}, got {actual!r}")


def _require(doc: dict, kind: str, field: str):
    if field not in doc or doc[field] is None:
        raise WireError(f"{kind} is missing required field {field!r}")
    return doc[field]


# ---------------------------------------------------------------------------
# Nested value codecs (tolerant: unknown keys are dropped, not fatal)
# ---------------------------------------------------------------------------

def _design_from_wire(doc) -> Design:
    if not isinstance(doc, dict):
        raise WireError("'design' must be an object")
    for field in ("name", "policy", "sync_enabled"):
        _require(doc, "design", field)
    try:
        return Design.from_json(doc)
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"bad design document: {exc}") from exc


def _config_from_wire(doc) -> PlatformConfig:
    if not isinstance(doc, dict):
        raise WireError("'config' must be an object")
    known = {field.name for field in dataclasses.fields(PlatformConfig)}
    try:
        return PlatformConfig.from_json(
            {key: value for key, value in doc.items() if key in known})
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"bad config document: {exc}") from exc


def _ecg_from_wire(doc) -> EcgConfig:
    if not isinstance(doc, dict):
        raise WireError("'ecg' must be an object")
    known = {field.name for field in dataclasses.fields(EcgConfig)}
    try:
        return EcgConfig(
            **{key: value for key, value in doc.items() if key in known})
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad ecg document: {exc}") from exc


def _channels_from_wire(doc) -> tuple[tuple[int, ...], ...]:
    try:
        return tuple(tuple(int(value) for value in channel)
                     for channel in doc)
    except (TypeError, ValueError) as exc:
        raise WireError(
            f"'channels' must be an array of integer arrays: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# RunRequest
# ---------------------------------------------------------------------------

def request_to_wire(request: RunRequest) -> dict:
    """The wire document of one request (see ``docs/wire_schema.md``)."""
    return {
        "wire_schema": WIRE_SCHEMA,
        "kind": "run_request",
        "benchmark": request.benchmark,
        "design": request.design.to_json(),
        "config": (None if request.config is None
                   else request.config.to_json()),
        "n_samples": request.n_samples,
        "num_cores": request.num_cores,
        "seed": request.seed,
        "ecg": (None if request.ecg is None
                else dataclasses.asdict(request.ecg)),
        "channels": (None if request.channels is None
                     else [list(channel) for channel in request.channels]),
        "sync_mode": request.sync_mode,
        "sync_min_statements": request.sync_min_statements,
        "fast_engine": request.fast_engine,
        "max_cycles": request.max_cycles,
        "verify": request.verify,
    }


_REQUEST_DEFAULTS = {
    field.name: field.default for field in dataclasses.fields(RunRequest)
    if field.default is not dataclasses.MISSING
}


def request_from_wire(doc: dict) -> RunRequest:
    """Inverse of :func:`request_to_wire`; digest-stable.

    Optional fields fall back to the :class:`RunRequest` defaults;
    unknown fields are ignored.

    :raises WireError: on envelope mismatch or malformed fields.
    """
    check_envelope(doc, "run_request")
    benchmark = _require(doc, "run_request", "benchmark")
    if not isinstance(benchmark, str):
        raise WireError("'benchmark' must be a string")
    design = _design_from_wire(_require(doc, "run_request", "design"))

    def get(name):
        value = doc.get(name)
        return _REQUEST_DEFAULTS[name] if value is None else value

    config = doc.get("config")
    ecg = doc.get("ecg")
    channels = doc.get("channels")
    try:
        return RunRequest(
            benchmark=benchmark,
            design=design,
            config=None if config is None else _config_from_wire(config),
            n_samples=int(get("n_samples")),
            num_cores=int(get("num_cores")),
            seed=int(get("seed")),
            ecg=None if ecg is None else _ecg_from_wire(ecg),
            channels=(None if channels is None
                      else _channels_from_wire(channels)),
            sync_mode=doc.get("sync_mode"),
            sync_min_statements=int(get("sync_min_statements")),
            fast_engine=bool(get("fast_engine")),
            max_cycles=int(get("max_cycles")),
            verify=bool(get("verify")),
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(f"bad run_request document: {exc}") from exc


# ---------------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------------

def spec_to_wire(spec: SweepSpec, *, trace=None) -> dict:
    """The wire document of one sweep: a name plus nested requests.

    Each element of ``requests`` is a complete, self-describing
    ``run_request`` document (envelope included), so individual entries
    can be lifted out of a sweep and submitted alone.

    :param trace: optional :class:`~repro.obs.context.TraceContext`
        (or its wire dict) to embed as the document's ``trace`` field —
        the fallback propagation path for transports that strip the
        ``traceparent`` header.
    """
    doc = {
        "wire_schema": WIRE_SCHEMA,
        "kind": "sweep_spec",
        "name": spec.name,
        "requests": [request_to_wire(request) for request in spec.requests],
    }
    if trace is not None:
        doc["trace"] = trace if isinstance(trace, dict) else trace.to_wire()
    return doc


def spec_from_wire(doc: dict) -> SweepSpec:
    """Inverse of :func:`spec_to_wire`.

    :raises WireError: on envelope mismatch, a non-string name, an empty
        or missing request list, or any malformed nested request.
    """
    check_envelope(doc, "sweep_spec")
    name = _require(doc, "sweep_spec", "name")
    if not isinstance(name, str):
        raise WireError("'name' must be a string")
    requests = _require(doc, "sweep_spec", "requests")
    if not isinstance(requests, list) or not requests:
        raise WireError("'requests' must be a non-empty array")
    return SweepSpec(name, tuple(request_from_wire(request)
                                 for request in requests))


def trace_from_wire(doc: dict) -> "object | None":
    """The optional trace context of a ``sweep_spec`` document.

    Returns a :class:`~repro.obs.context.TraceContext` when the
    document carries a well-formed ``trace`` field, else ``None`` —
    absent and malformed contexts both mean "start a fresh trace",
    never an error (observability must not fail a submission).
    """
    from ..obs.context import TraceContext

    if not isinstance(doc, dict):
        return None
    return TraceContext.from_wire(doc.get("trace"))


# ---------------------------------------------------------------------------
# Run payloads (execution results)
# ---------------------------------------------------------------------------

def payload_to_wire(digest: str, payload: dict) -> dict:
    """Wrap one execution payload for the wire, addressed by its digest.

    The inner ``payload`` is exactly what
    :func:`~repro.exec.job.execute_request` produced (and the caches
    store) — already JSON, already carrying its own cache-entry
    ``schema`` — so the envelope only adds addressing and versioning.
    """
    return {
        "wire_schema": WIRE_SCHEMA,
        "kind": "run_payload",
        "digest": digest,
        "payload": payload,
    }


def payload_from_wire(doc: dict) -> tuple[str, dict]:
    """Inverse of :func:`payload_to_wire`; returns ``(digest, payload)``.

    :raises WireError: on envelope mismatch, a malformed digest, or an
        inner payload whose cache-entry ``schema`` differs from this
        build's (payloads are not portable across payload-schema bumps).
    """
    check_envelope(doc, "run_payload")
    digest = _require(doc, "run_payload", "digest")
    if not isinstance(digest, str) or len(digest) != 64:
        raise WireError("'digest' must be a 64-character hex string")
    payload = _require(doc, "run_payload", "payload")
    if not isinstance(payload, dict):
        raise WireError("'payload' must be an object")
    if payload.get("schema") != SCHEMA:
        raise WireError(
            f"payload schema {payload.get('schema')!r} does not match "
            f"this build's {SCHEMA}")
    return digest, payload
