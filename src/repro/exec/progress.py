"""Progress and throughput reporting for sweep executions.

The scheduler drives one :class:`SweepMetrics` per sweep: every finished
run is noted with its wall time, origin (cache hit, executed, failed)
and worker pid, and :meth:`SweepMetrics.report` renders the numbers an
operator wants while a fan-out is running — runs/s, cache hit rate and
per-worker utilization (busy seconds over sweep wall-clock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class RunRecord:
    """One completed run, as the metrics see it.

    :ivar batch: size of the array-of-machines batch the run was
        dispatched in (0 = individual dispatch).
    :ivar peeled: the run peeled out of its batch at a guard boundary
        before the natural end of program.
    :ivar deduped: the run shared a digest with an earlier request in
        the *same* sweep and rode its simulation (in-sweep dedup).
    :ivar coalesced: the run shared a digest with a run already in
        flight for *another* submission and waited on it instead of
        executing (service-level coalescing, ``repro serve``).
    :ivar cache_tier: which cache tier served a hit (``memory`` /
        ``disk`` / ``peer``); ``None`` for executed runs.
    """

    index: int
    label: str
    cached: bool
    failed: bool
    elapsed: float
    worker: int | None
    batch: int = 0
    peeled: bool = False
    deduped: bool = False
    coalesced: bool = False
    cache_tier: str | None = None


@dataclass
class SweepMetrics:
    """Aggregate throughput accounting for one sweep execution.

    All timing is monotonic-clock based and safe to read **mid-flight**:
    :attr:`wall_seconds` (and everything derived from it — runs/s,
    worker utilization, :meth:`report`) measures elapsed time live until
    :meth:`finish` freezes it, so progress displays and the manifest
    writer can snapshot the metrics while the sweep is still running.
    """

    total: int = 0
    records: list[RunRecord] = field(default_factory=list)
    _started: float = field(default_factory=time.monotonic)
    _finished: float | None = None

    def note(self, index: int, label: str, *, cached: bool, failed: bool,
             elapsed: float, worker: int | None, batch: int = 0,
             peeled: bool = False, deduped: bool = False,
             coalesced: bool = False,
             cache_tier: str | None = None) -> RunRecord:
        record = RunRecord(index, label, cached, failed, elapsed, worker,
                           batch, peeled, deduped, coalesced, cache_tier)
        self.records.append(record)
        return record

    def finish(self) -> None:
        """Freeze the sweep wall-clock (idempotent)."""
        if self._finished is None:
            self._finished = time.monotonic()

    # -- derived ---------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        end = self._finished if self._finished is not None else time.monotonic()
        return end - self._started

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(r.cached for r in self.records)

    @property
    def executed(self) -> int:
        return sum(not r.cached for r in self.records)

    @property
    def failures(self) -> int:
        return sum(r.failed for r in self.records)

    @property
    def dedup_hits(self) -> int:
        """Runs that rode an identical in-sweep request's simulation.

        Distinct from :attr:`cache_hits` (served from a stored result)
        and counted inside :attr:`executed` — a deduped slot reports as
        executed but carries no execution time of its own.
        """
        return sum(r.deduped for r in self.records)

    @property
    def coalesced_hits(self) -> int:
        """Runs served by another submission's in-flight simulation."""
        return sum(r.coalesced for r in self.records)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    def cache_tiers(self) -> dict[str, int]:
        """Cache hits broken out by the tier that served them.

        Unnamed tiers (plain caches predating tier labels) count under
        ``"unknown"`` so the totals still reconcile with
        :attr:`cache_hits`.
        """
        tiers: dict[str, int] = {}
        for record in self.records:
            if not record.cached:
                continue
            tier = record.cache_tier or "unknown"
            tiers[tier] = tiers.get(tier, 0) + 1
        return dict(sorted(tiers.items()))

    @property
    def runs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def batched(self) -> int:
        """Runs dispatched inside an array-of-machines batch."""
        return sum(r.batch >= 2 for r in self.records)

    @property
    def peeled(self) -> int:
        """Batched runs that peeled out early at a guard boundary."""
        return sum(r.peeled for r in self.records if r.batch >= 2)

    @property
    def peel_rate(self) -> float:
        batched = self.batched
        return self.peeled / batched if batched else 0.0

    @property
    def largest_batch(self) -> int:
        return max((r.batch for r in self.records), default=0)

    def worker_utilization(self) -> dict[int, float]:
        """Per-worker busy fraction: executed seconds / sweep wall-clock."""
        if self.wall_seconds <= 0:
            return {}
        busy: dict[int, float] = {}
        for record in self.records:
            if record.cached or record.worker is None:
                continue
            busy[record.worker] = busy.get(record.worker, 0.0) + record.elapsed
        return {pid: min(1.0, seconds / self.wall_seconds)
                for pid, seconds in sorted(busy.items())}

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "failures": self.failures,
            "dedup_hits": self.dedup_hits,
            "coalesced_hits": self.coalesced_hits,
            "hit_rate": round(self.hit_rate, 4),
            "cache_tiers": self.cache_tiers(),
            "wall_seconds": round(self.wall_seconds, 4),
            "runs_per_second": round(self.runs_per_second, 3),
            "batched_runs": self.batched,
            "largest_batch": self.largest_batch,
            "peel_rate": round(self.peel_rate, 4),
            "worker_utilization": {
                str(pid): round(fraction, 3)
                for pid, fraction in self.worker_utilization().items()
            },
        }

    def report(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.completed}/{self.total} runs in "
            f"{self.wall_seconds:.2f}s ({self.runs_per_second:.2f} runs/s) "
            f"— {self.cache_hits} cached, {self.executed} executed, "
            f"{self.failures} failed",
        ]
        if self.dedup_hits or self.coalesced_hits:
            lines.append(
                f"coalescing: {self.dedup_hits} deduped in-sweep, "
                f"{self.coalesced_hits} joined in-flight runs")
        tiers = self.cache_tiers()
        if tiers and set(tiers) != {"unknown"}:
            cells = [f"{tier} {count}" for tier, count in tiers.items()]
            lines.append("cache tiers: " + ", ".join(cells))
        if self.batched:
            lines.append(
                f"batched: {self.batched} runs coalesced "
                f"(largest batch {self.largest_batch}), "
                f"peel rate {self.peel_rate:.0%}")
        utilization = self.worker_utilization()
        if utilization:
            cells = [f"pid {pid} {fraction:.0%}"
                     for pid, fraction in utilization.items()]
            lines.append("worker utilization: " + ", ".join(cells))
        return "\n".join(lines)


def progress_line(record: RunRecord, done: int, total: int, *,
                  hit_rate: float | None = None) -> str:
    """One status line per completed run, for `--progress` style logs."""
    if record.failed:
        origin = "FAIL"
    elif record.cached:
        origin = "hit "
    elif record.coalesced:
        origin = "join"         # waited on another submission's run
    elif record.deduped:
        origin = "dup "         # rode an identical in-sweep request
    else:
        origin = "run "
    line = (f"[{done:3d}/{total}] {origin} {record.label:44s} "
            f"{record.elapsed:7.2f}s")
    if hit_rate is not None:
        line += f"  cache {hit_rate:4.0%}"
    if record.batch >= 2:
        # '*' marks a run that peeled out of its batch before the end
        line += f"  batch {record.batch}{'*' if record.peeled else ''}"
    return line
