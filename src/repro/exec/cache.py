"""Content-addressed result caches for the sweep executor.

A cache maps a request digest (:func:`repro.exec.job.request_digest`) to
the payload dict produced by :func:`repro.exec.job.execute_request`.
Because the digest covers every input of the run — program image bits,
platform configuration, channel samples, package version — entries never
need invalidation: any change to the inputs lands on a different key.

Three implementations share the ``get``/``put``/``clear`` protocol:

- :class:`MemoryCache` — bounded in-process LRU; the replacement for the
  old unbounded ``analysis.experiments._cache`` module global.
- :class:`DiskCache` — one JSON file per entry under ``~/.cache/repro``
  (or ``$REPRO_CACHE_DIR`` / an explicit root), written atomically,
  shared between processes and sessions.  Corrupt entries are dropped
  and recomputed, never trusted.
- :class:`TieredCache` — memory in front of disk, promoting disk hits.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from .job import SCHEMA


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/store/corruption/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}

    def summary(self) -> str:
        return (f"{self.hits} hits, {self.misses} misses, "
                f"{self.stores} stores, {self.corrupt} corrupt, "
                f"{self.evictions} evicted "
                f"(hit rate {self.hit_rate:.0%})")


class MemoryCache:
    """Bounded in-process LRU over payload dicts."""

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return entry

    def put(self, digest: str, payload: dict) -> None:
        self._entries[digest] = payload
        self._entries.move_to_end(digest)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class DiskCache:
    """One JSON file per result under a content-addressed directory tree.

    Entries live at ``root/<digest[:2]>/<digest>.json`` and are written
    via a temporary file + :func:`os.replace`, so concurrent writers
    (pool workers, parallel CI jobs) can only ever observe complete
    entries.  A file that fails to parse or whose recorded digest/schema
    disagrees with its name counts as *corrupt*: it is deleted and the
    lookup reports a miss, so the sweep recomputes and rewrites it.

    :param max_entries: optional eviction bound; when exceeded after a
        store, the oldest entries (by mtime) are removed.
    """

    def __init__(self, root: Path | str | None = None, *,
                 max_entries: int | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        path = self._path(digest)
        try:
            with path.open(encoding="utf-8") as handle:
                entry = json.load(handle)
            if (entry.get("schema") != SCHEMA
                    or entry.get("digest") != digest
                    or "payload" not in entry):
                raise ValueError("entry does not match its address")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, digest: str, payload: dict) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({"schema": SCHEMA, "digest": digest,
                           "payload": payload})
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        if self.max_entries is not None:
            self._evict()

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [path for shard in self.root.iterdir() if shard.is_dir()
                for path in shard.glob("*.json")]

    def _evict(self) -> None:
        files = self._entry_files()
        excess = len(files) - self.max_entries
        if excess <= 0:
            return
        files.sort(key=lambda p: p.stat().st_mtime)
        for path in files[:excess]:
            path.unlink(missing_ok=True)
            self.stats.evictions += 1

    def clear(self) -> None:
        for path in self._entry_files():
            path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._entry_files())


class TieredCache:
    """Memory cache in front of a disk cache.

    Lookups hit memory first and promote disk hits into memory; stores
    write through to both layers.  ``stats`` aggregates the tiers so the
    executor's hit-rate report counts each logical lookup once.
    """

    def __init__(self, memory: MemoryCache, disk: DiskCache):
        self.memory = memory
        self.disk = disk

    @property
    def stats(self) -> CacheStats:
        merged = CacheStats()
        merged.hits = self.memory.stats.hits + self.disk.stats.hits
        merged.misses = self.disk.stats.misses
        merged.stores = self.disk.stats.stores
        merged.corrupt = self.disk.stats.corrupt
        merged.evictions = (self.memory.stats.evictions
                            + self.disk.stats.evictions)
        return merged

    def get(self, digest: str) -> dict | None:
        payload = self.memory.get(digest)
        if payload is not None:
            return payload
        payload = self.disk.get(digest)
        if payload is not None:
            self.memory.put(digest, payload)
            self.memory.stats.stores -= 1   # promotion, not a new store
        return payload

    def put(self, digest: str, payload: dict) -> None:
        self.memory.put(digest, payload)
        self.memory.stats.stores -= 1
        self.disk.put(digest, payload)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()
