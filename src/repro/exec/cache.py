"""Content-addressed result caches for the sweep executor.

A cache maps a request digest (:func:`repro.exec.job.request_digest`) to
the payload dict produced by :func:`repro.exec.job.execute_request`.
Because the digest covers every input of the run — program image bits,
platform configuration, channel samples, package version — entries never
need invalidation: any change to the inputs lands on a different key.

Four implementations share the ``get``/``put``/``clear`` protocol:

- :class:`MemoryCache` — bounded in-process LRU; the replacement for the
  old unbounded ``analysis.experiments._cache`` module global.
- :class:`DiskCache` — one JSON file per entry under ``~/.cache/repro``
  (or ``$REPRO_CACHE_DIR`` / an explicit root), written atomically,
  shared between processes and sessions.  Corrupt entries are dropped
  and recomputed, never trusted.
- :class:`RemoteCache` — the interface shared network backends (a
  ``repro serve`` peer, Redis, S3) implement; :class:`HttpPeerCache` is
  the bundled reference implementation over the service wire protocol.
- :class:`TieredCache` — memory in front of disk (in front of an
  optional remote tier), promoting lower-tier hits upward.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from .job import SCHEMA


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss/store/corruption/eviction counters for one cache.

    ``promotions`` counts entries copied *into* this tier because a
    slower tier hit (:class:`TieredCache` promotion) — distinct from
    ``stores``, which counts logical write-throughs of fresh results.

    Counters are cumulative for the cache's lifetime.  For a *per-pass*
    rate (e.g. "was the warm pass fully warm?") take a
    :meth:`snapshot` before the pass and diff with :meth:`since` —
    a blended lifetime ``hit_rate`` over a cold+warm benchmark reads
    50% even when the warm pass hit every lookup.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0
    promotions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """An immutable copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.stores,
                          self.corrupt, self.evictions, self.promotions)

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this state and an earlier snapshot —
        the per-pass counters (and per-pass ``hit_rate``)."""
        return CacheStats(self.hits - earlier.hits,
                          self.misses - earlier.misses,
                          self.stores - earlier.stores,
                          self.corrupt - earlier.corrupt,
                          self.evictions - earlier.evictions,
                          self.promotions - earlier.promotions)

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt,
                "evictions": self.evictions,
                "promotions": self.promotions,
                "hit_rate": round(self.hit_rate, 4)}

    def summary(self) -> str:
        text = (f"{self.hits} hits, {self.misses} misses, "
                f"{self.stores} stores, {self.corrupt} corrupt, "
                f"{self.evictions} evicted "
                f"(hit rate {self.hit_rate:.0%})")
        if self.promotions:
            text += f", {self.promotions} promoted"
        return text


class MemoryCache:
    """Bounded in-process LRU over payload dicts."""

    #: tier name in per-tier stats and metrics labels
    tier = "memory"

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> dict | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.stats.hits += 1
        return entry

    def put(self, digest: str, payload: dict) -> None:
        self._entries[digest] = payload
        self._entries.move_to_end(digest)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class DiskCache:
    """One JSON file per result under a content-addressed directory tree.

    Entries live at ``root/<digest[:2]>/<digest>.json`` and are written
    via a temporary file + :func:`os.replace`, so concurrent writers
    (pool workers, parallel CI jobs) can only ever observe complete
    entries.  A file that fails to parse or whose recorded digest/schema
    disagrees with its name counts as *corrupt*: it is deleted and the
    lookup reports a miss, so the sweep recomputes and rewrites it.

    :param max_entries: optional eviction bound; when exceeded after a
        store, the oldest entries (by mtime) are removed.
    """

    #: tier name in per-tier stats and metrics labels
    tier = "disk"

    def __init__(self, root: Path | str | None = None, *,
                 max_entries: int | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_entries = max_entries
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        path = self._path(digest)
        try:
            with path.open(encoding="utf-8") as handle:
                entry = json.load(handle)
            if (entry.get("schema") != SCHEMA
                    or entry.get("digest") != digest
                    or "payload" not in entry):
                raise ValueError("entry does not match its address")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, OSError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return entry["payload"]

    def put(self, digest: str, payload: dict) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({"schema": SCHEMA, "digest": digest,
                           "payload": payload})
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(blob, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        if self.max_entries is not None:
            self._evict()

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [path for shard in self.root.iterdir() if shard.is_dir()
                for path in shard.glob("*.json")]

    def _evict(self) -> None:
        files = self._entry_files()
        excess = len(files) - self.max_entries
        if excess <= 0:
            return
        files.sort(key=lambda p: p.stat().st_mtime)
        for path in files[:excess]:
            path.unlink(missing_ok=True)
            self.stats.evictions += 1

    def clear(self) -> None:
        for path in self._entry_files():
            path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._entry_files())


class RemoteCache:
    """Interface for shared network-backed result-cache tiers.

    A remote tier lets a fleet of workers (or several ``repro serve``
    instances) share one content-addressed result pool: any member that
    simulated a design point once serves it to every other member.
    Implementations adapt a backend — an HTTP peer
    (:class:`HttpPeerCache`), Redis, S3 — to the same
    ``get``/``put``/``clear`` protocol the local caches speak, with two
    extra obligations:

    - **failures are misses**: a network error must never raise out of
      ``get``/``put``; count it, report a miss, move on (the local
      tiers keep the sweep correct on their own);
    - **payloads travel in wire form** (``run_payload`` documents,
      :mod:`repro.exec.wire`), so a peer on an incompatible build is
      detected by schema validation rather than trusted blindly.

    Subclasses implement :meth:`_fetch` and :meth:`_store`; the base
    class owns stats, error counting and the circuit breaker
    (``max_errors`` consecutive transport failures disable the tier for
    the rest of the process — one dead peer must not add a timeout to
    every lookup of a long sweep).
    """

    #: tier name in per-tier stats and metrics labels
    tier = "peer"

    def __init__(self, *, max_errors: int = 5):
        self.stats = CacheStats()
        self.max_errors = max_errors
        self.errors = 0
        self._disabled = False

    @property
    def disabled(self) -> bool:
        """True once the error budget is exhausted (tier offline)."""
        return self._disabled

    def _fetch(self, digest: str) -> dict | None:
        """Backend read: payload dict, ``None`` for not-found, raise on
        transport/validation trouble."""
        raise NotImplementedError

    def _store(self, digest: str, payload: dict) -> None:
        """Backend write; raise on transport trouble."""
        raise NotImplementedError

    def _note_error(self) -> None:
        self.errors += 1
        if self.errors >= self.max_errors:
            self._disabled = True

    def get(self, digest: str) -> dict | None:
        if self._disabled:
            self.stats.misses += 1
            return None
        try:
            payload = self._fetch(digest)
        except Exception:
            self._note_error()
            self.stats.misses += 1
            return None
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        if self._disabled:
            return
        try:
            self._store(digest, payload)
        except Exception:
            self._note_error()
            return
        self.stats.stores += 1

    def clear(self) -> None:
        """Remote pools are shared; clearing them is a backend decision."""


class HttpPeerCache(RemoteCache):
    """Reference :class:`RemoteCache` over the ``repro serve`` wire API.

    Reads ``GET {base_url}/v1/runs/{digest}`` and (when ``store`` is
    true) writes ``PUT {base_url}/v1/runs/{digest}``, both carrying
    ``run_payload`` wire documents (``docs/wire_schema.md``).  Any
    ``repro serve`` instance is a valid peer, so two servers pointed at
    each other form a shared cache pair; the same two calls are the
    entire surface a Redis or S3 adapter would map onto its backend.

    :param base_url: peer root, e.g. ``http://cache-peer:8642``.
    :param store: also push locally-computed results to the peer.
    :param timeout: per-call transport budget in seconds.
    """

    def __init__(self, base_url: str, *, store: bool = True,
                 timeout: float = 5.0, max_errors: int = 5):
        super().__init__(max_errors=max_errors)
        self.base_url = base_url.rstrip("/")
        self.store = store
        self.timeout = timeout

    def _url(self, digest: str) -> str:
        return f"{self.base_url}/v1/runs/{digest}"

    def _fetch(self, digest: str) -> dict | None:
        from .wire import payload_from_wire

        request = urllib.request.Request(
            self._url(digest), headers={"Accept": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                doc = json.load(response)
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise
        fetched, payload = payload_from_wire(doc)
        if fetched != digest:
            raise ValueError(f"peer returned digest {fetched}, "
                             f"wanted {digest}")
        return payload

    def _store(self, digest: str, payload: dict) -> None:
        if not self.store:
            return
        from .wire import payload_to_wire

        blob = json.dumps(payload_to_wire(digest, payload)).encode()
        request = urllib.request.Request(
            self._url(digest), data=blob, method="PUT",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=self.timeout):
            pass


class TieredCache:
    """Memory cache in front of a disk cache (and an optional remote).

    Lookups walk memory -> disk -> remote and promote hits into every
    faster tier; stores write through to all tiers.  ``stats``
    aggregates the tiers so the executor's hit-rate report counts each
    logical lookup once; a miss is only a miss once the *last* tier has
    said so.  :meth:`tier_stats` breaks the same counters out per tier
    (promotions included), and :attr:`last_hit_tier` names the tier
    that served the most recent :meth:`get` — the executor stamps it
    onto outcomes so manifests and metrics can tell a memory hit from
    a disk or peer hit.
    """

    #: tier name in per-tier stats and metrics labels
    tier = "tiered"

    def __init__(self, memory: MemoryCache, disk: DiskCache,
                 remote: RemoteCache | None = None):
        self.memory = memory
        self.disk = disk
        self.remote = remote
        #: tier that served the most recent ``get`` (``None`` = miss)
        self.last_hit_tier: str | None = None

    @property
    def stats(self) -> CacheStats:
        merged = CacheStats()
        merged.hits = self.memory.stats.hits + self.disk.stats.hits
        merged.misses = self.disk.stats.misses
        merged.stores = self.disk.stats.stores
        merged.corrupt = self.disk.stats.corrupt
        merged.evictions = (self.memory.stats.evictions
                            + self.disk.stats.evictions)
        merged.promotions = (self.memory.stats.promotions
                             + self.disk.stats.promotions)
        if self.remote is not None:
            merged.hits += self.remote.stats.hits
            merged.misses = self.remote.stats.misses
        return merged

    def tier_stats(self) -> dict[str, CacheStats]:
        """Per-tier counters, keyed by tier name (peer when wired)."""
        tiers = {self.memory.tier: self.memory.stats,
                 self.disk.tier: self.disk.stats}
        if self.remote is not None:
            tiers[self.remote.tier] = self.remote.stats
        return tiers

    @staticmethod
    def _promote(tier, digest: str, payload: dict) -> None:
        """Copy a slower tier's hit into a faster tier.

        Counted as a *promotion* on the receiving tier, not a logical
        store — stores keep meaning "fresh result written through".
        """
        tier.put(digest, payload)
        tier.stats.stores -= 1
        tier.stats.promotions += 1

    def get(self, digest: str) -> dict | None:
        payload = self.memory.get(digest)
        if payload is not None:
            self.last_hit_tier = self.memory.tier
            return payload
        payload = self.disk.get(digest)
        if payload is not None:
            self._promote(self.memory, digest, payload)
            self.last_hit_tier = self.disk.tier
            return payload
        if self.remote is None:
            self.last_hit_tier = None
            return None
        payload = self.remote.get(digest)
        if payload is not None:
            self._promote(self.memory, digest, payload)
            self._promote(self.disk, digest, payload)
            self.last_hit_tier = self.remote.tier
            return payload
        self.last_hit_tier = None
        return payload

    def put(self, digest: str, payload: dict) -> None:
        self.memory.put(digest, payload)
        self.memory.stats.stores -= 1
        self.disk.put(digest, payload)
        if self.remote is not None:
            self.remote.put(digest, payload)

    def clear(self) -> None:
        self.memory.clear()
        self.disk.clear()
        if self.remote is not None:
            self.remote.clear()
