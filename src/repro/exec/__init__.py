"""Parallel sweep execution with content-addressed result caching.

The paper's evaluation — and this repository's ablation suite on top of
it — is a design-space sweep: many independent simulations over a grid
of kernels, designs and platform knobs.  This package turns one such
simulation into a pure, pickle-able job (:mod:`repro.exec.job`),
schedules jobs across a process pool with crash isolation and
deterministic result ordering (:mod:`repro.exec.scheduler`), and never
recomputes a run whose inputs haven't changed, via content-addressed
on-disk/in-memory caches (:mod:`repro.exec.cache`).

Entry points: ``python -m repro sweep`` on the command line,
:class:`SweepExecutor` from code.
"""

from .cache import (
    CacheStats,
    DiskCache,
    HttpPeerCache,
    MemoryCache,
    RemoteCache,
    TieredCache,
    default_cache_dir,
)
from .job import (
    RunRequest,
    RunTimeout,
    SweepSpec,
    batch_key,
    execute_batch,
    execute_request,
    program_digest,
    request_digest,
)
from .progress import SweepMetrics
from .scheduler import RunOutcome, SweepExecutor
from .wire import (
    WIRE_SCHEMA,
    WireError,
    payload_from_wire,
    payload_to_wire,
    request_from_wire,
    request_to_wire,
    spec_from_wire,
    spec_to_wire,
)

__all__ = [
    "CacheStats",
    "DiskCache",
    "HttpPeerCache",
    "MemoryCache",
    "RemoteCache",
    "RunOutcome",
    "RunRequest",
    "RunTimeout",
    "SweepExecutor",
    "SweepMetrics",
    "SweepSpec",
    "TieredCache",
    "WIRE_SCHEMA",
    "WireError",
    "batch_key",
    "default_cache_dir",
    "execute_batch",
    "execute_request",
    "payload_from_wire",
    "payload_to_wire",
    "program_digest",
    "request_digest",
    "request_to_wire",
    "request_from_wire",
    "spec_from_wire",
    "spec_to_wire",
]
