"""Process-pool scheduler for simulation sweeps.

:class:`SweepExecutor` takes an ordered list of
:class:`~repro.exec.job.RunRequest` and produces one
:class:`RunOutcome` per request, **in request order**, regardless of how
the work was scheduled:

1. every request is content-addressed (:func:`request_digest`) and
   deduplicated — identical requests simulate once;
2. digests are looked up in the configured cache (unless ``refresh``);
3. the misses execute — serially in-process for ``jobs <= 1``, else on a
   ``ProcessPoolExecutor`` with ``jobs`` workers.  The pool persists
   across :meth:`SweepExecutor.run` calls, so workers keep their
   per-process caches of built kernel images and generated inputs warm
   (on fork start methods they even inherit the parent's warm caches);
4. failures are isolated: a run that raises (diverging config, deadlock,
   cycle-limit, per-run timeout) produces an outcome with ``error`` set
   while the rest of the sweep completes.  Even a worker crash that
   breaks the pool only falls back to in-process execution of the
   remaining runs;
5. successful results are written back to the cache.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass

from ..kernels import BenchmarkRun
from ..obs.profile import ExecProfile
from .job import (
    RunRequest,
    SweepSpec,
    batch_key,
    execute_batch,
    execute_request,
    request_digest,
)
from .progress import SweepMetrics, progress_line


@dataclass
class RunOutcome:
    """One request's result: a payload on success, an error string else."""

    index: int
    request: RunRequest
    digest: str
    payload: dict | None = None
    error: str | None = None
    cached: bool = False
    #: cache tier that served a hit (``memory`` / ``disk`` / ``peer``;
    #: ``None`` for executed runs and single-tier caches without names)
    cache_tier: str | None = None
    #: shared a digest with an earlier request in the same sweep and
    #: rode its simulation (in-sweep dedup)
    deduped: bool = False
    #: served by another submission's in-flight run (``repro serve``
    #: coalescing; never set by :class:`SweepExecutor` itself)
    coalesced: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and self.payload is not None

    @property
    def elapsed(self) -> float:
        """Simulation seconds (0 for cache hits)."""
        return 0.0 if self.cached else (self.payload or {}).get("elapsed",
                                                                0.0)

    @property
    def worker(self) -> int | None:
        return (self.payload or {}).get("worker")

    @property
    def golden_match(self) -> bool | None:
        return (self.payload or {}).get("golden_match")

    @property
    def sync_points(self) -> int | None:
        return (self.payload or {}).get("sync_points")

    def benchmark_run(self) -> BenchmarkRun:
        """Reconstruct the run; raises if the request failed."""
        if not self.ok:
            raise RuntimeError(
                f"run {self.request.label} failed: {self.error}")
        return BenchmarkRun.from_json(self.payload["run"])


def _pool_task(request: RunRequest,
               timeout: float | None) -> tuple[dict | None, str | None]:
    """Worker entry point: crash isolation boundary for one run."""
    try:
        return execute_request(request, timeout=timeout), None
    except BaseException as exc:                  # noqa: BLE001 — isolate
        return None, f"{type(exc).__name__}: {exc}"


def _pool_batch(requests: list, timeout: float | None,
                trace_id: str | None = None
                ) -> list[tuple[dict | None, str | None]]:
    """Worker entry point for one coalesced batch (aligned results)."""
    try:
        return execute_batch(requests, timeout=timeout, trace_id=trace_id)
    except BaseException as exc:                  # noqa: BLE001 — isolate
        error = f"{type(exc).__name__}: {exc}"
        return [(None, error)] * len(requests)


class SweepExecutor:
    """Schedules sweeps over a cache and (optionally) a process pool.

    :param jobs: worker processes; ``0`` or ``1`` executes in-process.
    :param cache: a :class:`MemoryCache` / :class:`DiskCache` /
        :class:`TieredCache`, or ``None`` for no caching.
    :param timeout: per-run wall-clock budget in seconds (``None`` =
        unbounded; the request's ``max_cycles`` still applies).
    :param refresh: ignore existing cache entries but store fresh ones
        (``--refresh``).
    :param batch: coalesce same-image requests into array-of-machines
        batches (:func:`~repro.exec.job.execute_batch`).  Results are
        bit-identical either way; disable to force per-run dispatch
        (``--no-batch``).
    :param log: callable for progress lines (e.g. ``print``); ``None``
        runs quietly.
    :param profile: collect an :class:`~repro.obs.profile.ExecProfile`
        per sweep (``--profile``): per-phase wall/CPU timings and
        per-run self-time, exposed as :attr:`last_profile` and folded
        into the manifest.  Off by default — profiling is opt-in and
        otherwise completely off-path.
    """

    def __init__(self, jobs: int = 0, cache=None, *,
                 timeout: float | None = None, refresh: bool = False,
                 batch: bool = True, log=None, profile: bool = False):
        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.refresh = refresh
        self.batch = batch
        self.log = log
        self.profile = profile
        self.last_metrics: SweepMetrics | None = None
        self.last_profile: ExecProfile | None = None
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pool_instance(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- execution -------------------------------------------------------

    def _hit_tier(self) -> str | None:
        """Which tier served the last cache hit (``None`` if unnamed)."""
        tier = getattr(self.cache, "last_hit_tier", None)
        if tier is None:
            tier = getattr(self.cache, "tier", None)
        return tier

    def run(self, requests, manifest=None, observer=None,
            trace_id: str | None = None) -> list[RunOutcome]:
        """Execute a :class:`SweepSpec` or request sequence.

        :param trace_id: optional trace identifier stamped on the
            structured log records the batch layer emits (refusals,
            scalar fallbacks), tying them to the submitting request.
        :param manifest: optional
            :class:`~repro.telemetry.manifest.SweepManifestWriter`; each
            outcome is appended to its run log as it lands (cache hits
            included) and the manifest is finalized when the sweep ends.
        :param observer: optional observability hook — duck-typed with
            ``on_phase(name, started, ended, **info)`` called after the
            cache and execute phases (epoch-second boundaries) and
            ``on_outcome(outcome, record)`` called per outcome as it
            lands.  The service uses this to grow the request's span
            tree; observer errors are the caller's problem by design.
        :returns: outcomes in request order (deterministic regardless of
            worker completion order).
        """
        spec = requests if isinstance(requests, SweepSpec) else None
        if isinstance(requests, SweepSpec):
            requests = requests.requests
        requests = list(requests)
        metrics = SweepMetrics(total=len(requests))
        self.last_metrics = metrics
        profile = ExecProfile() if self.profile else None
        self.last_profile = profile

        with profile.phase("digest") if profile else nullcontext():
            digests = [request_digest(request) for request in requests]
        outcomes: list[RunOutcome | None] = [None] * len(requests)

        # cache phase — identical digests collapse onto one slot
        pending: dict[str, list[int]] = {}
        done = 0
        phase_started = time.time()
        with profile.phase("cache") if profile else nullcontext():
            for index, (request, digest) in enumerate(zip(requests,
                                                          digests)):
                payload = None
                if self.cache is not None and not self.refresh:
                    payload = self.cache.get(digest)
                if payload is not None:
                    tier = self._hit_tier()
                    outcomes[index] = RunOutcome(index, request, digest,
                                                 payload=payload,
                                                 cached=True,
                                                 cache_tier=tier)
                    done += 1
                    record = metrics.note(index, request.label, cached=True,
                                          failed=False, elapsed=0.0,
                                          worker=None, cache_tier=tier)
                    if manifest is not None:
                        manifest.note_outcome(outcomes[index], record)
                    if observer is not None:
                        observer.on_outcome(outcomes[index], record)
                    if self.log:
                        self.log(progress_line(record, done, metrics.total,
                                               hit_rate=metrics.hit_rate))
                else:
                    pending.setdefault(digest, []).append(index)
        if observer is not None:
            observer.on_phase("cache", phase_started, time.time(),
                              hits=done, misses=len(pending))

        # execute phase
        unique = [(digest, requests[indices[0]])
                  for digest, indices in pending.items()]
        phase_started = time.time()
        with profile.phase("execute") if profile else nullcontext():
            for digest, payload, error in self._execute(unique, trace_id):
                for position, index in enumerate(pending[digest]):
                    outcomes[index] = RunOutcome(index, requests[index],
                                                 digest, payload=payload,
                                                 error=error,
                                                 deduped=position > 0)
                    done += 1
                    # duplicates share the payload but only the first one
                    # carries the execution time (metrics honesty)
                    engine = (payload or {}).get("engine") or {}
                    record = metrics.note(
                        index, requests[index].label, cached=False,
                        failed=error is not None,
                        elapsed=((payload or {}).get("elapsed", 0.0)
                                 if position == 0 else 0.0),
                        worker=(payload or {}).get("worker"),
                        batch=(payload or {}).get("batch_size", 0),
                        peeled=bool(engine.get("peel_count")),
                        deduped=position > 0)
                    if position == 0 and profile is not None:
                        profile.note_run(requests[index].label, payload)
                    if manifest is not None:
                        manifest.note_outcome(outcomes[index], record)
                    if observer is not None:
                        observer.on_outcome(outcomes[index], record)
                    if self.log:
                        self.log(progress_line(record, done, metrics.total,
                                               hit_rate=metrics.hit_rate))
                if error is None and self.cache is not None:
                    self.cache.put(digest, payload)
        if observer is not None:
            observer.on_phase("execute", phase_started, time.time(),
                              executed=len(unique))

        metrics.finish()
        if manifest is not None:
            manifest.finalize(metrics=metrics, cache=self.cache, spec=spec,
                              profile=profile)
        return [outcome for outcome in outcomes if outcome is not None]

    def _coalesce(self, unique):
        """Partition unique pending runs into singles and batch groups.

        Requests sharing a :func:`~repro.exec.job.batch_key` (same built
        image, platform and cycle bound — only the inputs differ) form
        one array-of-machines batch; families of one, and requests that
        cannot batch at all, dispatch individually.  Deterministic in
        request order, so batched and pooled sweeps stay reproducible.
        """
        if not self.batch or len(unique) < 2:
            return list(unique), []
        singles, families, order = [], {}, []
        for digest, request in unique:
            key = batch_key(request)
            if key is None:
                singles.append((digest, request))
                continue
            if key not in families:
                families[key] = []
                order.append(key)
            families[key].append((digest, request))
        batches = []
        for key in order:
            group = families[key]
            if len(group) >= 2:
                batches.append(group)
            else:
                singles.append(group[0])
        return singles, batches

    def _execute(self, unique, trace_id=None):
        """Yield ``(digest, payload, error)`` for each unique pending run."""
        singles, batches = self._coalesce(unique)
        if self.log:
            for group in batches:
                head = group[0][1]
                self.log(f"batch: {len(group)} runs coalesced "
                         f"({head.benchmark} {head.design.name} "
                         f"c{head.platform_config().num_cores})")
        if self.jobs > 1 and len(unique) > 1:
            yield from self._execute_pool(singles, batches, trace_id)
            return
        for digest, request in singles:
            payload, error = _pool_task(request, self.timeout)
            yield digest, payload, error
        for group in batches:
            results = _pool_batch([request for _, request in group],
                                  self.timeout, trace_id)
            for (digest, _), (payload, error) in zip(group, results):
                yield digest, payload, error

    def _execute_pool(self, singles, batches, trace_id=None):
        pool = self._pool_instance()
        futures = []
        try:
            for digest, request in singles:
                futures.append((pool.submit(_pool_task, request,
                                            self.timeout),
                                [(digest, request)], False))
            for group in batches:
                futures.append((pool.submit(
                    _pool_batch, [request for _, request in group],
                    self.timeout, trace_id), group, True))
        except BaseException:
            self.close()
            raise
        broken: list[tuple[list, bool]] = []
        for future, group, is_batch in futures:
            try:
                result = future.result()
            except Exception:
                # pool-level failure (e.g. a worker died hard and broke
                # the pool): salvage this work in-process and rebuild
                # the pool lazily on the next sweep.
                broken.append((group, is_batch))
                self.close()
                continue
            if is_batch:
                for (digest, _), (payload, error) in zip(group, result):
                    yield digest, payload, error
            else:
                payload, error = result
                yield group[0][0], payload, error
        for group, is_batch in broken:
            if is_batch:
                results = _pool_batch([request for _, request in group],
                                      self.timeout, trace_id)
            else:
                results = [_pool_task(group[0][1], self.timeout)]
            for (digest, _), (payload, error) in zip(group, results):
                yield digest, payload, error
