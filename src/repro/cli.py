"""Command-line interface: regenerate every table/figure of the paper.

Usage::

    python -m repro table1              # Table I
    python -m repro fig3 MRPFLTR        # one Fig. 3 panel
    python -m repro speedup             # sec. V-B speedup/IPC claims
    python -m repro accesses            # IM/DM access claims
    python -m repro novscale            # 38%-without-voltage-scaling claim
    python -m repro run SQRT32 --design with-sync --samples 64
    python -m repro calibrate           # re-fit the power model
    python -m repro listing MRPDLN      # program disassembly
    python -m repro synclint --all      # verify sync discipline statically
    python -m repro sweep --jobs 8      # parallel cached design-space sweep
    python -m repro trace MRPDLN        # Perfetto trace of barrier spans
    python -m repro stats sweep-out     # summarize a sweep run manifest
    python -m repro serve --port 8642   # simulation-as-a-service HTTP API
    python -m repro client --quick      # submit a sweep to a running server
    python -m repro obs sweep-out       # profile/trace/metrics summary
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    access_rows,
    format_accesses,
    format_fig3,
    format_novscale,
    format_speedup,
    format_table1,
    power_models,
    reference_runs,
    run_activities,
    speedup_rows,
)
from .kernels import (
    BENCHMARKS,
    DESIGNS,
    build_program,
    golden_outputs,
    run_benchmark,
)


def _add_samples(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=64,
                        help="ECG samples per channel (default 64)")


def _runs(args):
    return reference_runs(n_samples=args.samples)


def cmd_table1(args) -> int:
    print(format_table1(power_models(_runs(args))))
    return 0


def cmd_fig3(args) -> int:
    models = power_models(_runs(args))
    benchmarks = [args.benchmark] if args.benchmark else list(BENCHMARKS)
    for bench in benchmarks:
        print(format_fig3(models, bench))
        print()
    return 0


def cmd_speedup(args) -> int:
    print(format_speedup(speedup_rows(_runs(args))))
    return 0


def cmd_accesses(args) -> int:
    print(format_accesses(access_rows(_runs(args))))
    return 0


def cmd_novscale(args) -> int:
    print(format_novscale(power_models(_runs(args))))
    return 0


def cmd_run(args) -> int:
    from .analysis import evaluation_channels

    design = DESIGNS[args.design]
    channels = evaluation_channels(args.samples)
    run = run_benchmark(args.benchmark, design, channels)
    ok = run.outputs == golden_outputs(args.benchmark, channels)
    print(f"{args.benchmark} on {design.name}: "
          f"{'matches' if ok else 'DIVERGES FROM'} the golden model")
    print(run.trace.summary())
    return 0 if ok else 1


def cmd_calibrate(args) -> int:
    from .power import calibrate

    result = calibrate(run_activities(_runs(args)))
    print(result.report())
    print("\nPaste into src/repro/power/defaults.py to refresh defaults.")
    return 0


def cmd_listing(args) -> int:
    program = build_program(args.benchmark, not args.baseline)
    print(program.listing())
    return 0


def _prepared_machine(args):
    """Build a loaded, un-run machine for an instrumented subcommand."""
    from .analysis import evaluation_channels
    from .platform import Machine

    design = DESIGNS[args.design]
    channels = evaluation_channels(args.samples)
    program = build_program(args.benchmark, design.sync_enabled)
    machine = Machine(program, design.platform_config(len(channels)))
    for core, channel in enumerate(channels):
        machine.dm.load(core * 2048, [v & 0xFFFF for v in channel])
    from .kernels.sqrt32 import N_SAMPLES_ADDRESS

    address = program.symbols.get("g_n_samples", N_SAMPLES_ADDRESS)
    machine.dm.write(address, len(channels[0]))
    return machine, program


def _instrumented_run(args, probe):
    """Run one benchmark with a probe attached; returns (machine, program)."""
    machine, program = _prepared_machine(args)
    if probe is not None:
        machine.attach_probe(probe)
    machine.run()
    return machine, program


def cmd_profile(args) -> int:
    from .analysis.profiler import ProfileProbe, format_profile, hottest_pcs

    probe = ProfileProbe()
    machine, program = _instrumented_run(args, probe)
    print(format_profile(probe, program))
    print("\nhottest instructions:")
    for pc, text, cycles in hottest_pcs(probe, program, top=8):
        print(f"  {pc:5d}  {cycles:8d}  {text}")
    return 0


def cmd_timeline(args) -> int:
    from .analysis.timeline import TimelineProbe

    probe = TimelineProbe(max_cycles=args.cycles)
    machine, _ = _instrumented_run(args, probe)
    compress = max(1, probe.cycles_recorded // args.width)
    print(probe.render(width=args.width, compress=compress))
    print(f"strict lockstep ratio: {probe.lockstep_ratio():.2f}")
    return 0


def cmd_vcd(args) -> int:
    from .platform.vcd import VcdProbe

    probe = VcdProbe(args.output)
    machine, _ = _instrumented_run(args, probe)   # run() finishes the probe
    print(f"wrote {args.output} ({machine.trace.cycles} cycles)")
    return 0


def _span_labels(benchmark: str, design) -> dict[int, str]:
    """Checkpoint index -> span name, from the synclint region tree."""
    from .sync.verifier import lint_assembly, lint_minic

    bench = BENCHMARKS[benchmark]
    if bench.kind == "minic":
        report = lint_minic(bench.source, name=benchmark,
                            sync_mode="auto" if design.sync_enabled
                            else "none")
    else:
        report = lint_assembly(bench.source, name=benchmark,
                               sync_enabled=design.sync_enabled)
    return report.region_labels(build_program(benchmark,
                                              design.sync_enabled))


def cmd_trace(args) -> int:
    from .telemetry import BarrierTracer, MetricsRegistry, write_trace

    design = DESIGNS[args.design]
    machine, program = _prepared_machine(args)
    if machine.synchronizer is None:
        print(f"trace: design {design.name!r} has no synchronizer — "
              "barrier spans need one (try --design with-sync)")
        return 2
    tracer = BarrierTracer(machine,
                           labels=_span_labels(args.benchmark, design))
    machine.run()

    payload = write_trace(tracer, args.out, benchmark=args.benchmark)
    registry = MetricsRegistry.for_machine(machine, tracer)
    snapshot = registry.snapshot()
    stats = machine.engine_stats
    print(f"wrote {args.out}: {len(payload['traceEvents'])} events, "
          f"{len(tracer.spans)} barrier spans over "
          f"{machine.trace.cycles} cycles")
    print(f"fast engine {'engaged' if stats.engaged else 'stood down'}: "
          f"{stats.lockstep_cycles} lockstep + {stats.divergent_cycles} "
          f"divergent + {stats.sleep_cycles} sleep cycles on fast paths")
    print(f"  superblocks: {stats.fused_cycles} cycles fused over "
          f"{stats.fused_blocks} blocks, {stats.deopt_count} deopts")
    print(f"  memory fusion: {stats.mem_fused_ops} LD/ST fused inside "
          f"{stats.mem_fused_blocks} blocks, {stats.term_guard} guard "
          f"deopts")
    terms = [(reason, getattr(stats, "term_" + reason))
             for reason in ("mem", "sync", "stop", "diverge", "cap",
                            "guard")]
    census = ", ".join(f"{reason}={count}" for reason, count in terms
                       if count)
    print(f"  block terminations: {census or 'none'}")
    print(f"  barrier fast path: {stats.sync_fused_rmws} merged "
          f"checkpoint RMWs replayed without step()")
    for index, row in sorted(snapshot["barriers"]["checkpoints"].items(),
                             key=lambda kv: int(kv[0])):
        print(f"  {row['label']:32s} {row['spans']:5d} spans  "
              f"wait p50/p90/max {row['wait_p50']}/{row['wait_p90']}/"
              f"{row['wait_max']} cycles")
    print("open in https://ui.perfetto.dev")
    return 0


def cmd_stats(args) -> int:
    from .telemetry import summarize_manifest

    try:
        print(summarize_manifest(args.manifest))
    except FileNotFoundError as exc:
        print(f"stats: {exc}")
        return 2
    return 0


def cmd_syncstats(args) -> int:
    machine, _ = _instrumented_run(args, None)
    if machine.synchronizer is None:
        print("design has no synchronizer")
        return 1
    from .sync.points import DEFAULT_SYNC_BASE

    print(machine.synchronizer.stats_report(base=DEFAULT_SYNC_BASE))
    return 0


def _synclint_target(target: str, args):
    """Lint one synclint target: a bundled benchmark name or a file path.

    :returns: a :class:`~repro.sync.verifier.LintReport`.
    """
    from .sync.verifier import lint_assembly, lint_compile_result, lint_minic

    sync_enabled = not args.baseline
    if target in BENCHMARKS:
        bench = BENCHMARKS[target]
        flavour = "baseline" if args.baseline else "with-sync"
        name = f"{target}[{flavour}]"
        if bench.kind == "minic":
            return lint_minic(bench.source, name=name,
                              sync_mode=args.sync_mode
                              if sync_enabled else "none")
        return lint_assembly(bench.source, name=name,
                             sync_enabled=sync_enabled,
                             loads_divergent=args.strict)
    with open(target, encoding="utf-8") as handle:
        source = handle.read()
    lang = args.lang
    if lang == "auto":
        lang = ("minic" if target.endswith((".mc", ".minic", ".c"))
                else "asm")
    if lang == "minic":
        return lint_minic(source, name=target, sync_mode=args.sync_mode)
    return lint_assembly(source, name=target, filename=target,
                         sync_enabled=sync_enabled,
                         loads_divergent=args.strict)


def _synclint_crosscheck(target: str, report, args) -> int:
    """Run a bundled benchmark and replay its barrier traces against the
    static region tree; returns a process exit code."""
    from .analysis import evaluation_channels
    from .kernels.suite import WITH_SYNC
    from .kernels.sqrt32 import N_SAMPLES_ADDRESS
    from .platform import Machine
    from .sync.verifier import SyncCrosscheck

    if target not in BENCHMARKS:
        print(f"synclint: --crosscheck needs a bundled benchmark, "
              f"not {target!r}")
        return 2
    channels = evaluation_channels(args.samples)
    program = build_program(target, True)
    machine = Machine(program, WITH_SYNC.platform_config(len(channels)))
    check = SyncCrosscheck(machine, report)
    for core, channel in enumerate(channels):
        machine.dm.load(core * 2048, [v & 0xFFFF for v in channel])
    address = program.symbols.get("g_n_samples", N_SAMPLES_ADDRESS)
    machine.dm.write(address, len(channels[0]))
    machine.run()
    result = check.result()
    print(result.render())
    return 0 if result.ok else 1


def cmd_synclint(args) -> int:
    import json as _json

    from .compiler.lexer import CompileError
    from .sync.instrument import InstrumentationError

    targets = list(args.targets)
    if args.all:
        targets.extend(t for t in BENCHMARKS if t not in targets)
    if not targets:
        print("synclint: nothing to lint "
              "(name a file or benchmark, or pass --all)")
        return 2

    reports = []
    for target in targets:
        try:
            reports.append(_synclint_target(target, args))
        except (InstrumentationError, CompileError, OSError) as exc:
            print(f"synclint: {target}: {exc}", file=sys.stderr)
            return 2

    if args.json:
        payload = [r.to_json() for r in reports]
        print(_json.dumps(payload[0] if len(payload) == 1 else payload,
                          indent=2))
    else:
        for report in reports:
            print(report.render())

    status = 0
    if any(r.errors for r in reports):
        status = 1
    elif args.werror and any(r.warnings for r in reports):
        status = 1

    if args.crosscheck:
        for target, report in zip(targets, reports):
            code = _synclint_crosscheck(target, report, args)
            status = max(status, code)
    return status


def _sweep_spec(args, name: str):
    """Build the grid `SweepSpec` shared by ``sweep`` and ``client``.

    :returns: ``(spec, benchmarks, design_names, samples)``.
    """
    from .exec import SweepSpec

    benchmarks = args.benchmarks or list(BENCHMARKS)
    designs = [DESIGNS[key]
               for key in (args.designs or ("with-sync", "without-sync"))]
    samples = list(args.samples or [64])
    if args.quick:
        samples = [min(n, 16) for n in samples]
    spec = SweepSpec.grid(name, benchmarks, designs,
                          samples=tuple(samples), seed=args.seed)
    return spec, benchmarks, [design.name for design in designs], samples


def cmd_sweep(args) -> int:
    import json as _json

    from .exec import DiskCache, SweepExecutor

    spec, benchmarks, designs, samples = _sweep_spec(args, "cli-sweep")
    cache = None if args.no_cache else DiskCache(args.cache_dir)
    cache_label = "off" if cache is None else str(cache.root)
    if cache is not None and args.remote_cache:
        from .exec import HttpPeerCache, MemoryCache, TieredCache

        cache = TieredCache(MemoryCache(max_entries=256), cache,
                            remote=HttpPeerCache(args.remote_cache))
        cache_label += f" + peer {args.remote_cache}"
    print(f"sweep: {len(spec)} runs, jobs={args.jobs}, "
          f"cache={cache_label}"
          f"{' (refresh)' if args.refresh else ''}")

    manifest = None
    if not args.no_manifest:
        from .telemetry import SweepManifestWriter

        manifest = SweepManifestWriter(args.manifest, name=spec.name)

    from .obs.context import TraceContext

    trace = TraceContext.new()
    with SweepExecutor(jobs=args.jobs, cache=cache, timeout=args.timeout,
                       refresh=args.refresh, batch=args.batch,
                       log=print, profile=args.profile) as executor:
        outcomes = executor.run(spec, manifest=manifest,
                                trace_id=trace.trace_id)
    metrics = executor.last_metrics
    if manifest is not None:
        print(f"manifest: {manifest.manifest_path} "
              f"(+ {manifest.runs_path.name})")

    print()
    print(f"  {'benchmark':9s}  {'design':13s}  {'n':>4s}  {'cycles':>9s}"
          f"  {'ops/cyc':>7s}  {'golden':>6s}  origin")
    for outcome in outcomes:
        request = outcome.request
        if outcome.ok:
            run = outcome.benchmark_run()
            golden = {True: "ok", False: "FAIL", None: "-"}[
                outcome.golden_match]
            print(f"  {request.benchmark:9s}  {request.design.name:13s}  "
                  f"{request.n_samples:4d}  {run.cycles:9d}  "
                  f"{run.ops_per_cycle:7.2f}  {golden:>6s}  "
                  f"{'cache' if outcome.cached else 'run'}")
        else:
            print(f"  {request.benchmark:9s}  {request.design.name:13s}  "
                  f"{request.n_samples:4d}  {'-':>9s}  {'-':>7s}  "
                  f"{'-':>6s}  ERROR: {outcome.error}")
    print()
    print(metrics.report())
    if cache is not None:
        print(f"cache: {cache.stats.summary()}")
    if args.profile and executor.last_profile is not None:
        print()
        print(executor.last_profile.report())

    if args.json:
        payload = {
            "spec": {"benchmarks": benchmarks, "designs": designs,
                     "samples": samples, "seed": args.seed,
                     "jobs": args.jobs},
            "metrics": metrics.as_dict(),
            "cache": None if cache is None else cache.stats.as_dict(),
            "runs": [
                {"digest": o.digest, "cached": o.cached, "error": o.error,
                 "golden_match": o.golden_match,
                 "run": None if not o.ok else o.payload["run"]}
                for o in outcomes
            ],
        }
        with open(args.json, "w", encoding="utf-8") as sink:
            _json.dump(payload, sink, indent=2)
        print(f"wrote {args.json}")

    if any(not o.ok or o.golden_match is False for o in outcomes):
        return 1
    if args.expect_cached and metrics.executed:
        print(f"expected an all-cached sweep but {metrics.executed} runs "
              "executed")
        return 2
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .exec import WIRE_SCHEMA, HttpPeerCache, MemoryCache
    from .obs.log import configure_logging
    from .serve import SweepService, default_service_cache, serve_forever

    configure_logging(json_output=args.log_json, level=args.log_level)
    if args.no_cache and args.peer:
        print("serve: --no-cache and --peer are mutually exclusive "
              "(the peer tier lives inside the cache)", file=sys.stderr)
        return 2
    if args.no_cache:
        cache = MemoryCache(max_entries=512)
        cache_label = "memory only"
    else:
        remote = HttpPeerCache(args.peer) if args.peer else None
        cache = default_service_cache(args.cache_dir, remote=remote)
        cache_label = str(cache.disk.root)
        if args.peer:
            cache_label += f" + peer {args.peer}"

    service = SweepService(cache=cache, state_dir=args.state_dir,
                           jobs=args.jobs, batch=args.batch,
                           timeout=args.timeout,
                           concurrency=args.concurrency,
                           profile=args.profile)

    def ready(address):
        host, port = address
        print(f"repro-serve listening on http://{host}:{port} "
              f"(wire schema {WIRE_SCHEMA}, cache: {cache_label}, "
              f"state: {service.state_dir})", flush=True)

    try:
        asyncio.run(serve_forever(service, args.host, args.port,
                                  ready=ready))
    except KeyboardInterrupt:
        print("serve: shutting down")
    finally:
        service.close()
    return 0


def cmd_client(args) -> int:
    import json as _json

    from .serve import ServeClient, ServiceError

    client = ServeClient(args.server, timeout=args.timeout)
    spec, _, _, _ = _sweep_spec(args, args.name)
    try:
        health = client.healthz()
    except (ServiceError, OSError) as exc:
        print(f"client: cannot reach {client.base_url}: {exc}",
              file=sys.stderr)
        return 2
    print(f"client: {client.base_url} (repro {health.get('version')}, "
          f"wire schema {health.get('wire_schema')}); "
          f"submitting {len(spec)} runs")

    try:
        job = client.submit(spec)
    except ServiceError as exc:
        print(f"client: submission rejected: {exc}", file=sys.stderr)
        return 2
    job_id = job["id"]
    trace_id = job.get("trace_id") or (client.last_trace.trace_id
                                       if client.last_trace else "?")
    print(f"job {job_id} accepted (trace {trace_id})")

    seen = 0
    for event in client.events(job_id):
        if event.get("event") == "end":
            break
        seen += 1
        origin = ("FAIL" if event.get("error") else
                  "hit " if event.get("cached") else
                  "join" if event.get("coalesced") else
                  "dup " if event.get("deduped") else "run ")
        line = f"  [{seen}/{len(spec)}] {origin} {event.get('label', '?')}"
        if event.get("error"):
            line += f"  ({event['error']})"
        print(line, flush=True)

    final = client.wait(job_id, timeout=args.timeout)
    runs = final.get("runs") or []
    counts = {key: sum(1 for row in runs if row["source"] == key)
              for key in ("executed", "cache", "coalesced", "deduped",
                          "error")}
    mismatches = sum(1 for row in runs if row["golden_match"] is False)
    print(f"job {job_id} {final['status']}: {len(runs)} runs — "
          f"{counts['executed']} executed, {counts['cache']} cached, "
          f"{counts['coalesced']} coalesced, {counts['deduped']} deduped, "
          f"{counts['error']} failed, {mismatches} golden mismatches")
    if final.get("error"):
        print(f"  server error: {final['error']}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as sink:
            _json.dump(final, sink, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if final["status"] != "done" or counts["error"] or mismatches:
        return 1
    if args.expect_cached and counts["executed"]:
        print(f"expected an all-cached sweep but {counts['executed']} "
              "runs executed on the server")
        return 2
    return 0


#: the curated metric families ``repro obs --server`` summarizes
_OBS_FAMILIES = (
    "repro_uptime_seconds",
    "repro_build_info",
    "repro_http_requests_total",
    "repro_http_requests_in_flight",
    "repro_jobs_submitted_total",
    "repro_jobs",
    "repro_jobs_in_flight",
    "repro_sweep_request_latency_seconds_count",
    "repro_sweep_request_latency_seconds_sum",
    "repro_sweep_queue_wait_seconds_count",
    "repro_runs_total",
    "repro_coalescer_claims_total",
    "repro_coalescer_handoffs_total",
    "repro_coalescer_inflight",
    "repro_cache_requests_total",
    "repro_cache_stores_total",
    "repro_cache_promotions_total",
    "repro_cache_evictions_total",
    "repro_worker_utilization",
)


def _obs_scrape(args) -> int:
    from .serve import ServeClient, ServiceError

    client = ServeClient(args.server, timeout=args.timeout)
    try:
        text = client.metrics_prometheus()
    except (ServiceError, OSError) as exc:
        print(f"obs: cannot reach {client.base_url}: {exc}",
              file=sys.stderr)
        return 2
    if args.raw:
        print(text, end="")
        return 0
    print(f"obs: {client.base_url} (curated families; --raw for the "
          "full exposition)")
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if name in _OBS_FAMILIES:
            print(f"  {line}")
    return 0


def cmd_obs(args) -> int:
    """Observability summary: live-server scrape or manifest breakdown."""
    import json as _json
    from pathlib import Path

    from .obs.profile import profile_from_dict

    if args.server:
        return _obs_scrape(args)

    path = Path(args.manifest)
    if path.is_dir():
        path = path / "manifest.json"
    try:
        doc = _json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"obs: no manifest at {path} "
              "(run `repro sweep --profile` first, or pass --server URL)",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"obs: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 2

    print(f"obs: {path} — sweep {doc.get('name', '?')!r} "
          f"(schema {doc.get('schema', '?')})")
    print(f"  runs: {doc.get('runs', 0)} total, {doc.get('ok', 0)} ok, "
          f"{doc.get('failed', 0)} failed, {doc.get('cached', 0)} cached")
    tiers = doc.get("cache_tiers") or {}
    if tiers:
        cells = [f"{tier} {count}" for tier, count in sorted(tiers.items())]
        print("  cache tiers: " + ", ".join(cells))
    if doc.get("trace_id"):
        print(f"  trace_id: {doc['trace_id']} "
              "(GET /v1/sweeps/{id}/trace on the serving instance)")
    profile = profile_from_dict(doc.get("profile"))
    if profile is not None:
        for line in profile.report().splitlines():
            print(f"  {line}")
    else:
        print("  no profile section (re-run with --profile to collect "
              "per-phase timings)")
    return 0


def cmd_energy(args) -> int:
    from .analysis.energy import format_energy

    print(format_energy(power_models(_runs(args))))
    return 0


def cmd_report(args) -> int:
    from .analysis.report import full_report

    text = full_report(n_samples=args.samples)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as sink:
            sink.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Dogan et al., DATE 2013: "
                    "synchronizing code execution on ULP multi-core "
                    "biosignal platforms.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="regenerate Table I")
    _add_samples(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig3", help="regenerate Fig. 3 panels")
    p.add_argument("benchmark", nargs="?", choices=list(BENCHMARKS))
    _add_samples(p)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("speedup", help="speedup / ops-per-cycle table")
    _add_samples(p)
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser("accesses", help="IM/DM bank access table")
    _add_samples(p)
    p.set_defaults(func=cmd_accesses)

    p = sub.add_parser("novscale",
                       help="savings without voltage scaling")
    _add_samples(p)
    p.set_defaults(func=cmd_novscale)

    p = sub.add_parser("run", help="run one benchmark and verify it")
    p.add_argument("benchmark", choices=list(BENCHMARKS))
    p.add_argument("--design", choices=list(DESIGNS), default="with-sync")
    _add_samples(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("calibrate", help="re-fit the power model")
    _add_samples(p)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser("listing", help="disassemble a benchmark image")
    p.add_argument("benchmark", choices=list(BENCHMARKS))
    p.add_argument("--baseline", action="store_true",
                   help="show the build without sync points")
    p.set_defaults(func=cmd_listing)

    def instrumented(name, help_text):
        q = sub.add_parser(name, help=help_text)
        q.add_argument("benchmark", choices=list(BENCHMARKS))
        q.add_argument("--design", choices=list(DESIGNS),
                       default="with-sync")
        _add_samples(q)
        return q

    p = instrumented("profile", "cycle-attribution hot-spot profile")
    p.set_defaults(func=cmd_profile)

    p = instrumented("timeline", "per-core activity timeline")
    p.add_argument("--width", type=int, default=110)
    p.add_argument("--cycles", type=int, default=50_000)
    p.set_defaults(func=cmd_timeline)

    p = instrumented("vcd", "dump a VCD waveform of the run")
    p.add_argument("-o", "--output", default="platform.vcd")
    p.set_defaults(func=cmd_vcd)

    p = instrumented("syncstats", "per-checkpoint contention statistics")
    p.set_defaults(func=cmd_syncstats)

    p = sub.add_parser(
        "synclint",
        help="statically verify SINC/SDEC sync discipline",
        description="Static sync-coverage verifier: checks balance, "
                    "nesting, aliasing and divergence coverage of "
                    "checkpoint regions (see docs/synclint.md).")
    p.add_argument("targets", nargs="*",
                   help="assembly/minic files or bundled benchmark names "
                        f"({', '.join(BENCHMARKS)})")
    p.add_argument("--all", action="store_true",
                   help="lint every bundled benchmark (CI regression gate)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable JSON report")
    p.add_argument("--lang", choices=("auto", "asm", "minic"),
                   default="auto",
                   help="source language for file targets "
                        "(default: by extension)")
    p.add_argument("--sync-mode", choices=("auto", "all", "none"),
                   default="auto", help="minic sync insertion mode")
    p.add_argument("--baseline", action="store_true",
                   help="lint the build without sync points")
    p.add_argument("--strict", action="store_true",
                   help="treat every memory load as per-core "
                        "(fully conservative divergence analysis)")
    p.add_argument("--werror", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--crosscheck", action="store_true",
                   help="also run bundled benchmarks and replay observed "
                        "barrier traces against the static region tree")
    _add_samples(p)
    p.set_defaults(func=cmd_synclint)

    def add_sweep_grid(q):
        """The spec-grid flags shared by `sweep` and `client`."""
        q.add_argument("--benchmarks", nargs="+",
                       choices=list(BENCHMARKS), default=None,
                       help="kernels to sweep (default: all)")
        q.add_argument("--designs", nargs="+", choices=list(DESIGNS),
                       default=None,
                       help="designs to sweep (default: with-sync "
                            "without-sync)")
        q.add_argument("--samples", nargs="+", type=int, default=None,
                       metavar="N",
                       help="per-channel window sizes (default: 64)")
        q.add_argument("--seed", type=int, default=2013,
                       help="ECG generator seed")
        q.add_argument("--quick", action="store_true",
                       help="clamp windows to 16 samples (CI smoke)")

    p = sub.add_parser(
        "sweep",
        help="run a benchmark x design sweep in parallel, with caching",
        description="Parallel sweep executor: schedules independent "
                    "simulations across worker processes and serves "
                    "unchanged runs from a content-addressed result "
                    "cache (see docs/performance.md).")
    add_sweep_grid(p)
    p.add_argument("-j", "--jobs", type=int, default=0,
                   help="worker processes (0 = in-process serial)")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory "
                        "(default: ~/.cache/repro or $REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache entirely")
    p.add_argument("--refresh", action="store_true",
                   help="ignore cached entries but store fresh results")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run wall-clock budget in seconds")
    p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="coalesce same-image runs into array-of-machines "
                        "batches (bit-identical results; --no-batch "
                        "forces per-run dispatch)")
    p.add_argument("--remote-cache", default=None, metavar="URL",
                   help="read/write-through peer cache tier: the base "
                        "URL of a running `repro serve` "
                        "(see docs/service.md)")
    p.add_argument("--expect-cached", action="store_true",
                   help="exit 2 unless every run was a cache hit "
                        "(CI warm-cache assertion)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write results + metrics as JSON")
    p.add_argument("--manifest", default="sweep-out", metavar="DIR",
                   help="directory for the run manifest "
                        "(manifest.json + runs.jsonl; default: sweep-out)")
    p.add_argument("--no-manifest", action="store_true",
                   help="skip writing the run manifest")
    p.add_argument("--profile", action="store_true",
                   help="collect per-phase and per-run timings "
                        "(printed and folded into the manifest; "
                        "see `repro obs`)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP API",
        description="Long-lived async sweep service: accepts wire-format "
                    "SweepSpec documents over HTTP, coalesces identical "
                    "in-flight runs across submissions, and serves "
                    "results from a shared memory/disk/peer cache tier "
                    "(see docs/service.md).")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (default: 8642; 0 = ephemeral)")
    p.add_argument("-j", "--jobs", type=int, default=0,
                   help="executor worker processes "
                        "(0 = in-process serial)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="sweep worker threads (min 2 so concurrent "
                        "submissions coalesce; default: 2)")
    p.add_argument("--cache-dir", default=None,
                   help="disk-cache tier directory "
                        "(default: ~/.cache/repro or $REPRO_CACHE_DIR)")
    p.add_argument("--no-cache", action="store_true",
                   help="keep results in memory only (nothing persists)")
    p.add_argument("--peer", default=None, metavar="URL",
                   help="peer cache tier: the base URL of another "
                        "`repro serve` to read/write through")
    p.add_argument("--state-dir", default="serve-state",
                   help="root for per-job manifest directories "
                        "(default: serve-state)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run wall-clock budget in seconds")
    p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="array-of-machines batching in the executor")
    p.add_argument("--log-json", action="store_true",
                   help="structured JSON log lines on stderr "
                        "(default: human-readable key=value text)")
    p.add_argument("--log-level", default="info",
                   choices=("debug", "info", "warning", "error"),
                   help="log verbosity (default: info)")
    p.add_argument("--profile", action="store_true",
                   help="profile every executed sweep (per-phase "
                        "timings folded into job manifests)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="submit a sweep to a running `repro serve`",
        description="Blocking client for the sweep service: builds the "
                    "same grid spec as `repro sweep`, submits it over "
                    "the wire protocol, streams per-run progress events "
                    "and verifies the outcome (see docs/service.md).")
    p.add_argument("--server", default="http://127.0.0.1:8642",
                   help="service base URL "
                        "(default: http://127.0.0.1:8642)")
    add_sweep_grid(p)
    p.add_argument("--name", default="cli-client",
                   help="sweep name recorded in the job manifest")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="socket/wait timeout in seconds (default: 300)")
    p.add_argument("--expect-cached", action="store_true",
                   help="exit 2 if the server executed any run afresh "
                        "(CI warm-cache assertion; coalesced and cached "
                        "sources both count as warm)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the final job resource as JSON")
    p.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "trace",
        help="export a Perfetto trace of one benchmark's barrier spans",
        description="Event-driven barrier tracing: runs one benchmark "
                    "with the telemetry tracer attached (the fast engine "
                    "stays engaged) and writes Chrome trace-event JSON "
                    "for ui.perfetto.dev (see docs/telemetry.md).")
    p.add_argument("benchmark", type=str.upper, choices=list(BENCHMARKS),
                   help="benchmark to trace (case-insensitive)")
    p.add_argument("--design", choices=list(DESIGNS), default="with-sync")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="output JSON path (default: trace.json)")
    _add_samples(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="summarize a sweep run manifest",
        description="Render the manifest.json / runs.jsonl a "
                    "`repro sweep` left behind: per-run outcomes, cache "
                    "hits, telemetry totals (see docs/telemetry.md).")
    p.add_argument("manifest", nargs="?", default="sweep-out",
                   help="sweep directory, manifest.json or runs.jsonl "
                        "(default: sweep-out)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "obs",
        help="observability summary: manifest profile or live metrics",
        description="Two modes: summarize a sweep manifest's profile / "
                    "trace / cache-tier sections, or (with --server) "
                    "scrape a running `repro serve`'s Prometheus "
                    "metrics (see docs/observability.md).")
    p.add_argument("manifest", nargs="?", default="sweep-out",
                   help="sweep directory or manifest.json "
                        "(default: sweep-out)")
    p.add_argument("--server", default=None, metavar="URL",
                   help="scrape a running service instead of reading "
                        "a manifest")
    p.add_argument("--raw", action="store_true",
                   help="with --server: print the full Prometheus "
                        "exposition instead of the curated summary")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="scrape socket timeout in seconds (default: 10)")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser("energy", help="energy-per-op table")
    _add_samples(p)
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser("report",
                       help="full reproduction report (all artifacts)")
    p.add_argument("-o", "--output", default=None)
    _add_samples(p)
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
