"""MRPDLN platform kernel (paper benchmark 2).

Per core/channel: multiscale-morphological-derivative QRS delineation,
matching :func:`repro.dsp.mrpdln.mrpdln_int` word for word.  The output
record is ``[count, peak, onset, offset, ...]`` at the channel's output
buffer.
"""

from __future__ import annotations

from ..dsp.mrpdln import (
    DEFAULT_REFRACTORY,
    DEFAULT_SCALE,
    DEFAULT_SEARCH,
    mrpdln_int,
)
from .morph_lib import MORPH_FUNCTIONS

NAME = "MRPDLN"

MAX_PEAKS = 16
OUT_WORDS = 1 + 3 * MAX_PEAKS

SOURCE = f"""
uniform int n_samples;
uniform int scale = {DEFAULT_SCALE};
uniform int refractory = {DEFAULT_REFRACTORY};
uniform int search = {DEFAULT_SEARCH};
uniform int max_peaks = {MAX_PEAKS};

{MORPH_FUNCTIONS}

void main() {{
    int id = __coreid();
    int *x   = id * 2048;
    int *out = id * 2048 + 512;
    int *d   = id * 2048 + 1024;
    int *s2  = id * 2048 + 1536;
    int n = n_samples;
    int k = scale * 2 + 1;

    /* multiscale morphological derivative: d = dil + ero - 2x */
    dilate(x, d, n, k);
    erode(x, s2, n, k);
    for (int i = 0; i < n; i = i + 1) {{
        d[i] = d[i] + s2[i] - 2 * x[i];
    }}

    /* adaptive threshold from the global extreme */
    int dmin = d[0];
    for (int i = 1; i < n; i = i + 1) {{
        if (d[i] < dmin) {{ dmin = d[i]; }}
    }}
    int threshold = dmin >> 2;

    /* peak scan with refractory skip */
    int count = 0;
    int i = 1;
    while (i < n - 1 && count < max_peaks) {{
        int v = d[i];
        if (v <= threshold && v <= d[i - 1] && v <= d[i + 1]) {{
            int left = i - search;
            if (left < 0) {{ left = 0; }}
            int right = i + search;
            if (right > n - 1) {{ right = n - 1; }}
            int onset = left;
            for (int j = left; j <= i; j = j + 1) {{
                if (d[j] > d[onset]) {{ onset = j; }}
            }}
            int offset = i;
            for (int j = i; j <= right; j = j + 1) {{
                if (d[j] > d[offset]) {{ offset = j; }}
            }}
            out[1 + count * 3] = i;
            out[2 + count * 3] = onset;
            out[3 + count * 3] = offset;
            count = count + 1;
            i = i + refractory;
        }} else {{
            i = i + 1;
        }}
    }}
    out[0] = count;
    for (int j = 1 + count * 3; j < 1 + max_peaks * 3; j = j + 1) {{
        out[j] = 0;
    }}
}}
"""


def golden(channel: list[int]) -> list[int]:
    """Reference output record for one channel (bit-exact)."""
    return mrpdln_int(channel, DEFAULT_SCALE, DEFAULT_REFRACTORY,
                      DEFAULT_SEARCH, MAX_PEAKS)
