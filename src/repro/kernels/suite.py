"""Benchmark suite: builds, loads, runs and checks the paper's kernels.

A :class:`Benchmark` couples a kernel's source (minic or assembly) with
its data layout and golden model.  A :class:`Design` names a hardware/
software configuration pair — the paper's two designs plus the ablation
points in between:

================  ===========================  =========================
design             platform policy              program build
================  ===========================  =========================
``with-sync``      synchronizer + D-Xbar stall  sync points inserted
``without-sync``   neither (DATE-2012 base)     no sync points
``barrier-only``   synchronizer only            sync points inserted
``dxbar-only``     D-Xbar stall policy only     no sync points
================  ===========================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..compiler import compile_source
from ..isa.assembler import assemble
from ..isa.program import Program
from ..isa.spec import to_signed16
from ..platform import ActivityTrace, Machine, PlatformConfig, SyncPolicy
from ..sync.instrument import instrument_assembly
from . import mrpdln, mrpfltr, sqrt32
from .layout import BANK_WORDS, OUT_OFFSET, check_samples


def _freeze(value):
    """Recursively convert JSON-shaped data into a hashable tuple form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Design:
    """One platform/program configuration pair."""

    name: str
    policy: SyncPolicy
    sync_enabled: bool

    def platform_config(self, num_cores: int = 8) -> PlatformConfig:
        return PlatformConfig(num_cores=num_cores, policy=self.policy)

    def to_key(self) -> tuple:
        """Stable identity tuple (field order fixed here, not by repr)."""
        return ("Design", self.name, self.policy.flag_names(),
                self.sync_enabled)

    def to_json(self) -> dict:
        return {"name": self.name,
                "policy": list(self.policy.flag_names()),
                "sync_enabled": self.sync_enabled}

    @classmethod
    def from_json(cls, payload: dict) -> "Design":
        return cls(payload["name"],
                   SyncPolicy.from_flag_names(payload["policy"]),
                   payload["sync_enabled"])


WITH_SYNC = Design("with-sync", SyncPolicy.FULL, True)
WITHOUT_SYNC = Design("without-sync", SyncPolicy.NONE, False)
BARRIER_ONLY = Design("barrier-only", SyncPolicy.HW_BARRIER, True)
DXBAR_ONLY = Design("dxbar-only", SyncPolicy.DXBAR_SYNC_STALL, False)

DESIGNS = {d.name: d for d in
           (WITH_SYNC, WITHOUT_SYNC, BARRIER_ONLY, DXBAR_ONLY)}


@dataclass(frozen=True)
class Benchmark:
    """One of the paper's reference benchmarks.

    :ivar name: paper name (MRPFLTR / MRPDLN / SQRT32).
    :ivar kind: 'minic' or 'asm'.
    :ivar source: kernel source text.
    :ivar golden: per-channel bit-exact reference function.
    :ivar out_words: output record length for ``n`` input samples.
    """

    name: str
    kind: str
    source: str
    golden: object
    out_words: object          # callable: n_samples -> words
    signed_output: bool = True


def _mrpfltr_out(n: int) -> int:
    return n


def _mrpdln_out(n: int) -> int:
    return mrpdln.OUT_WORDS


def _sqrt32_out(n: int) -> int:
    return n // sqrt32.WINDOW


BENCHMARKS = {
    "MRPFLTR": Benchmark("MRPFLTR", "minic", mrpfltr.SOURCE,
                         mrpfltr.golden, _mrpfltr_out),
    "MRPDLN": Benchmark("MRPDLN", "minic", mrpdln.SOURCE,
                        mrpdln.golden, _mrpdln_out),
    "SQRT32": Benchmark("SQRT32", "asm", sqrt32.SOURCE,
                        sqrt32.golden, _sqrt32_out, signed_output=False),
}


@lru_cache(maxsize=None)
def build_program(bench_name: str, sync_enabled: bool) -> Program:
    """Build (and cache) a benchmark image for one design flavour."""
    bench = BENCHMARKS[bench_name]
    if bench.kind == "minic":
        result = compile_source(
            bench.source, sync_mode="auto" if sync_enabled else "none")
        return result.program
    instrumented = instrument_assembly(bench.source, enabled=sync_enabled)
    return assemble(instrumented.source)


@dataclass
class BenchmarkRun:
    """Results of one simulation of a benchmark on one design."""

    benchmark: str
    design: Design
    n_samples: int
    outputs: list[list[int]] = field(default_factory=list)
    trace: ActivityTrace | None = None
    machine: Machine | None = None

    @property
    def ops_per_cycle(self) -> float:
        return self.trace.ops_per_cycle

    @property
    def cycles(self) -> int:
        return self.trace.cycles

    def to_key(self) -> tuple:
        """Stable content tuple: two runs with equal keys produced the
        same outputs and the same activity trace."""
        trace = self.trace.as_dict() if self.trace else None
        return ("BenchmarkRun", self.benchmark, self.design.to_key(),
                self.n_samples,
                tuple(tuple(channel) for channel in self.outputs),
                _freeze(trace))

    def to_json(self) -> dict:
        """JSON-safe dict for cache entries and worker transport.

        The attached :class:`Machine` (if any) is deliberately dropped:
        a serialized run carries results, not simulator state.
        """
        return {
            "benchmark": self.benchmark,
            "design": self.design.to_json(),
            "n_samples": self.n_samples,
            "outputs": [list(channel) for channel in self.outputs],
            "trace": self.trace.as_dict() if self.trace else None,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BenchmarkRun":
        trace = payload.get("trace")
        return cls(
            benchmark=payload["benchmark"],
            design=Design.from_json(payload["design"]),
            n_samples=payload["n_samples"],
            outputs=[list(channel) for channel in payload["outputs"]],
            trace=ActivityTrace.from_dict(trace) if trace else None,
        )


def prepare_benchmark(bench_name: str, design: Design,
                      channels: list[list[int]],
                      *, fast_engine: bool = True,
                      config: PlatformConfig | None = None,
                      program: Program | None = None
                      ) -> tuple[Machine, int]:
    """Build and load a benchmark machine without running it.

    Everything :func:`run_benchmark` does *before* ``machine.run`` —
    split out so batched dispatch (:mod:`repro.cpu.vec`) can prepare a
    whole family of same-image machines, advance them together, and
    :func:`collect_benchmark` each one afterwards.

    :returns: ``(machine, n_samples)`` — the machine is loaded and at
        its entry point, not yet run.
    """
    num_cores = len(channels)
    n_samples = check_samples(len(channels[0]))
    if any(len(c) != n_samples for c in channels):
        raise ValueError("all channels must have the same length")
    if config is not None and config.num_cores != num_cores:
        raise ValueError(
            f"config has {config.num_cores} cores but {num_cores} "
            "channels were supplied")

    if program is None:
        program = build_program(bench_name, design.sync_enabled)
    machine = Machine(program, config or design.platform_config(num_cores),
                      fast_engine=fast_engine)

    # load inputs into each core's private bank and set the shared count
    for core, channel in enumerate(channels):
        machine.dm.load(core * BANK_WORDS,
                        [v & 0xFFFF for v in channel])
    n_address = program.symbols.get("g_n_samples", sqrt32.N_SAMPLES_ADDRESS)
    machine.dm.write(n_address, n_samples)
    return machine, n_samples


def collect_benchmark(machine: Machine, bench_name: str, design: Design,
                      n_samples: int) -> BenchmarkRun:
    """Harvest outputs + trace from a machine that has finished running."""
    bench = BENCHMARKS[bench_name]
    run = BenchmarkRun(bench_name, design, n_samples, machine=machine,
                       trace=machine.trace)
    words = bench.out_words(n_samples)
    for core in range(machine.config.num_cores):
        raw = machine.dm.dump(core * BANK_WORDS + OUT_OFFSET, words)
        if bench.signed_output:
            run.outputs.append([to_signed16(v) for v in raw])
        else:
            run.outputs.append(list(raw))
    return run


def run_benchmark(bench_name: str, design: Design,
                  channels: list[list[int]],
                  *, max_cycles: int = 50_000_000,
                  fast_engine: bool = True,
                  config: PlatformConfig | None = None,
                  program: Program | None = None) -> BenchmarkRun:
    """Run one benchmark over per-core channels; returns outputs + trace.

    :param channels: one sample list per core (all equal length).
    :param fast_engine: forward to :class:`Machine` — disable to force
        the reference per-cycle engine (differential tests, perf bench).
    :param config: platform override for ablations (banking, broadcast,
        custom policy); defaults to ``design.platform_config``.  Its core
        count must match ``len(channels)``.
    :param program: image override (e.g. built with non-default compile
        options); defaults to the cached :func:`build_program` image.
    """
    machine, n_samples = prepare_benchmark(
        bench_name, design, channels, fast_engine=fast_engine,
        config=config, program=program)
    machine.run(max_cycles=max_cycles)
    return collect_benchmark(machine, bench_name, design, n_samples)


def golden_outputs(bench_name: str,
                   channels: list[list[int]]) -> list[list[int]]:
    """Reference outputs for every channel."""
    bench = BENCHMARKS[bench_name]
    return [bench.golden(channel) for channel in channels]
