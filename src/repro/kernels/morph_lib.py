"""Shared minic morphology routines used by the MRPFLTR/MRPDLN kernels.

The running min/max comparisons are the paper's canonical data-dependent
conditionals: each ``if (v < m)`` takes a different direction on each core
(the cores process different ECG leads), which is exactly what pulls the
cores out of lockstep on the baseline design.
"""

MORPH_FUNCTIONS = """
void erode(int *src, int *dst, uniform int n, uniform int k) {
    int half = k >> 1;
    for (int i = 0; i < n; i = i + 1) {
        int lo = i - half;
        if (lo < 0) { lo = 0; }
        int hi = i + half;
        if (hi > n - 1) { hi = n - 1; }
        int m = src[lo];
        for (int j = lo + 1; j <= hi; j = j + 1) {
            int v = src[j];
            if (v < m) { m = v; }
        }
        dst[i] = m;
    }
}

void dilate(int *src, int *dst, uniform int n, uniform int k) {
    int half = k >> 1;
    for (int i = 0; i < n; i = i + 1) {
        int lo = i - half;
        if (lo < 0) { lo = 0; }
        int hi = i + half;
        if (hi > n - 1) { hi = n - 1; }
        int m = src[lo];
        for (int j = lo + 1; j <= hi; j = j + 1) {
            int v = src[j];
            if (v > m) { m = v; }
        }
        dst[i] = m;
    }
}
"""
