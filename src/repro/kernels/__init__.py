"""The paper's three reference benchmarks as platform programs.

MRPFLTR and MRPDLN are compiled from minic with automatic sync-point
insertion; SQRT32 is hand assembly with pragma instrumentation.  Use
:func:`~repro.kernels.suite.run_benchmark` with a design from
:data:`~repro.kernels.suite.DESIGNS`.
"""

from .layout import (
    BANK_WORDS,
    IN_OFFSET,
    MAX_SAMPLES,
    OUT_OFFSET,
    check_samples,
    in_address,
    out_address,
)
from .suite import (
    BARRIER_ONLY,
    BENCHMARKS,
    Benchmark,
    BenchmarkRun,
    DESIGNS,
    DXBAR_ONLY,
    Design,
    WITH_SYNC,
    WITHOUT_SYNC,
    build_program,
    golden_outputs,
    run_benchmark,
)

__all__ = [
    "BANK_WORDS",
    "BARRIER_ONLY",
    "BENCHMARKS",
    "Benchmark",
    "BenchmarkRun",
    "DESIGNS",
    "DXBAR_ONLY",
    "Design",
    "IN_OFFSET",
    "MAX_SAMPLES",
    "OUT_OFFSET",
    "WITH_SYNC",
    "WITHOUT_SYNC",
    "build_program",
    "check_samples",
    "golden_outputs",
    "in_address",
    "out_address",
    "run_benchmark",
]
