"""SQRT32 platform kernel (paper benchmark 3) — hand-written assembly.

Per core/channel: an RMS envelope — for every non-overlapping window of 8
samples, accumulate the 32-bit sum of squares and take its mean's integer
square root (Rolfe's non-restoring method, one data-dependent trial
subtraction per bit).  Matches :func:`repro.dsp.sqrt32.rms_envelope`
bit for bit.

The kernel is written in assembly because it needs 32-bit arithmetic
(``ADC``/``SBC`` register pairs) that minic's 16-bit ``int`` cannot
express — mirroring how such hot kernels were hand-tuned on the real
platform.  Synchronization points are marked with ``;@sync`` pragmas
(the paper's Listing-1 workflow) and expanded or stripped by
:func:`repro.sync.instrument.instrument_assembly`.

Register plan: R6 points at the core's private scratch area (no calls, so
the stack pointer convention is free); the 32-bit working values use
R0:R1 (c), R2:R3 (d), R4:R5 (t/acc); R7 is scratch; the radicand x lives
in scratch memory words 0..1.
"""

from __future__ import annotations

from ..dsp.sqrt32 import rms_envelope
from ..sync.points import DEFAULT_SYNC_BASE
from .layout import SHARED_BASE

NAME = "SQRT32"

WINDOW = 8
WINDOW_SHIFT = 3

#: DM address of the shared sample-count parameter.
N_SAMPLES_ADDRESS = SHARED_BASE

SOURCE = f"""
.equ SHARED {SHARED_BASE}
.equ SYNCBASE {DEFAULT_SYNC_BASE}
.entry __start
__start:
    MFSR R0, COREID
    LI R1, #2048
    MUL R2, R0, R1          ; R2 = private bank base
    MOV R6, R2
    LI R1, #1024
    ADD R6, R6, R1          ; R6 = scratch base
    ST R2, [R6 + #2]        ; in_ptr = base ;@mem=A2048
    LI R1, #512
    ADD R3, R2, R1
    ST R3, [R6 + #3]        ; out_ptr = base + 512 ;@mem=A2048
    LI R1, #SHARED
    LD R1, [R1]            ;@mem=U
    SRLI R1, #{WINDOW_SHIFT}
    ST R1, [R6 + #4]        ; windows = n_samples / 8 ;@mem=A2048
    LI R1, #SYNCBASE
    MTSR RSYNC, R1

window_loop:
    LD R1, [R6 + #4]        ;@mem=A2048
    CMPI R1, #0
    LBEQ done

    ; ---- acc = sum of squares over 8 samples (32-bit in R4:R5) ----
    CLR R4
    CLR R5
    LD R2, [R6 + #2]        ;@mem=A2048
    LDI R3, #{WINDOW}
acc_loop:
    LD R0, [R2]        ;@mem=A2048
    MUL R1, R0, R0
    MULH R0, R0, R0
    ADD R5, R5, R1
    ADC R4, R4, R0
    ADDI R2, R2, #1
    ADDI R3, R3, #-1
    BNE acc_loop
    ST R2, [R6 + #2]        ;@mem=A2048

    ; ---- mean: acc >>= 3 ----
    SRLI R5, #{WINDOW_SHIFT}
    MOV R7, R4
    SLLI R7, #{16 - WINDOW_SHIFT}
    OR R5, R5, R7
    SRLI R4, #{WINDOW_SHIFT}
    ST R4, [R6 + #0]        ; x_hi ;@mem=A2048
    ST R5, [R6 + #1]        ; x_lo ;@mem=A2048

    ; ---- c = isqrt32(x) (non-restoring, Rolfe) ----
;@sync begin isqrt
    CLR R0                  ; c_hi
    CLR R1                  ; c_lo
    LI R2, #0x4000          ; d = 1 << 30
    CLR R3
;@sync begin align
align_loop:
    LD R7, [R6 + #0]        ;@mem=A2048
    CMP R2, R7              ; d_hi vs x_hi
    BLTU aligned
    BNE do_shift
    LD R7, [R6 + #1]        ;@mem=A2048
    CMP R3, R7              ; d_lo vs x_lo
    BLTU aligned
    BEQ aligned
do_shift:
    SRLI R3, #2
    MOV R7, R2
    SLLI R7, #14
    OR R3, R3, R7
    SRLI R2, #2
    OR R7, R2, R3
    BEQ aligned             ; d reached 0 (x == 0)
    BR align_loop
aligned:
;@sync end

sqrt_loop:
    OR R7, R2, R3
    LBEQ sqrt_done
    ADD R5, R1, R3          ; t = c + d
    ADC R4, R0, R2
;@sync begin trial
    LD R7, [R6 + #0]        ;@mem=A2048
    CMP R7, R4              ; x_hi vs t_hi
    BLTU no_sub
    BNE do_sub
    LD R7, [R6 + #1]        ;@mem=A2048
    CMP R7, R5
    BLTU no_sub
do_sub:
    LD R7, [R6 + #1]        ; x -= t ;@mem=A2048
    SUB R7, R7, R5
    ST R7, [R6 + #1]        ;@mem=A2048
    LD R7, [R6 + #0]        ;@mem=A2048
    SBC R7, R7, R4
    ST R7, [R6 + #0]        ;@mem=A2048
    SRLI R1, #1             ; c = (c >> 1) + d
    MOV R7, R0
    SLLI R7, #15
    OR R1, R1, R7
    SRLI R0, #1
    ADD R1, R1, R3
    ADC R0, R0, R2
    BR trial_join
no_sub:
    SRLI R1, #1             ; c >>= 1
    MOV R7, R0
    SLLI R7, #15
    OR R1, R1, R7
    SRLI R0, #1
trial_join:
;@sync end
    SRLI R3, #2             ; d >>= 2
    MOV R7, R2
    SLLI R7, #14
    OR R3, R3, R7
    SRLI R2, #2
    BR sqrt_loop
sqrt_done:
;@sync end

    LD R7, [R6 + #3]        ; *out_ptr++ = c ;@mem=A2048
    ST R1, [R7]        ;@mem=A2048
    ADDI R7, R7, #1
    ST R7, [R6 + #3]        ;@mem=A2048
    LD R1, [R6 + #4]        ; windows-- ;@mem=A2048
    ADDI R1, R1, #-1
    ST R1, [R6 + #4]        ;@mem=A2048
    BR window_loop

done:
    HALT
"""


def golden(channel: list[int]) -> list[int]:
    """Reference RMS envelope for one channel (bit-exact)."""
    return rms_envelope(channel, window=WINDOW)
