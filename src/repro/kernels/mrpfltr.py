"""MRPFLTR platform kernel (paper benchmark 1).

Per core/channel: morphological noise suppression followed by baseline
wander removal, matching :func:`repro.dsp.mrpfltr.mrpfltr_int` word for
word.  Buffers follow :mod:`repro.kernels.layout`.
"""

from __future__ import annotations

from ..dsp.mrpfltr import (
    DEFAULT_BASELINE_SE1,
    DEFAULT_BASELINE_SE2,
    DEFAULT_NOISE_SE,
    mrpfltr_int,
)
from .morph_lib import MORPH_FUNCTIONS

NAME = "MRPFLTR"

SOURCE = f"""
uniform int n_samples;
uniform int k_noise = {DEFAULT_NOISE_SE};
uniform int k_base1 = {DEFAULT_BASELINE_SE1};
uniform int k_base2 = {DEFAULT_BASELINE_SE2};

{MORPH_FUNCTIONS}

void main() {{
    int id = __coreid();
    int *x   = id * 2048;
    int *out = id * 2048 + 512;
    int *s1  = id * 2048 + 1024;
    int *s2  = id * 2048 + 1536;
    int n = n_samples;

    /* oc = closing(opening(x, b), b) -> out */
    erode(x, s1, n, k_noise);
    dilate(s1, s2, n, k_noise);
    dilate(s2, s1, n, k_noise);
    erode(s1, out, n, k_noise);

    /* co = opening(closing(x, b), b) -> s2 */
    dilate(x, s1, n, k_noise);
    erode(s1, s2, n, k_noise);
    erode(s2, s1, n, k_noise);
    dilate(s1, s2, n, k_noise);

    /* denoised = (oc + co) >> 1 -> out */
    for (int i = 0; i < n; i = i + 1) {{
        out[i] = (out[i] + s2[i]) >> 1;
    }}

    /* baseline = closing(opening(denoised, l1), l2) -> s2 */
    erode(out, s1, n, k_base1);
    dilate(s1, s2, n, k_base1);
    dilate(s2, s1, n, k_base2);
    erode(s1, s2, n, k_base2);

    /* corrected = denoised - baseline -> out */
    for (int i = 0; i < n; i = i + 1) {{
        out[i] = out[i] - s2[i];
    }}
}}
"""


def golden(channel: list[int]) -> list[int]:
    """Reference output for one channel (bit-exact)."""
    return mrpfltr_int(channel)
