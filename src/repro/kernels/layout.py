"""Data-memory layout shared by all platform kernels.

Each core owns one private DM bank (contiguous banking, paper sec. III):

====================  ==========================================
bank offset            contents
====================  ==========================================
0      .. 511          input channel samples
512    .. 1023         kernel output
1024   .. 1535         scratch buffer 1
1536   .. 1919         scratch buffer 2
1920   .. 2047         stack (grows down from the bank top)
====================  ==========================================

Shared parameters (sample count etc.) live in bank 8 alongside minic
globals; the checkpoint array lives in bank 15 (see
:mod:`repro.sync.points`).
"""

from __future__ import annotations

BANK_WORDS = 2048
IN_OFFSET = 0
OUT_OFFSET = 512
SCRATCH1_OFFSET = 1024
SCRATCH2_OFFSET = 1536

#: largest per-channel window the layout supports (scratch2 + stack share
#: the bank tail)
MAX_SAMPLES = 384

SHARED_BASE = 8 * BANK_WORDS


def in_address(core: int) -> int:
    return core * BANK_WORDS + IN_OFFSET


def out_address(core: int) -> int:
    return core * BANK_WORDS + OUT_OFFSET


def check_samples(n: int) -> int:
    if not 1 <= n <= MAX_SAMPLES:
        raise ValueError(
            f"sample count {n} outside [1, {MAX_SAMPLES}] "
            "(per-bank buffer layout)")
    return n
