"""In-flight request coalescing for the sweep service.

The result cache already makes *completed* work free to re-serve; the
coalescer does the same for work that is still running.  Every run the
service executes first **claims** its content digest here.  The first
claimant becomes the *owner* and actually simulates; every concurrent
submission that lands on the same digest while the owner is in flight
gets a *follower* claim and simply waits for the owner's result — a
thousand identical design-point queries become one simulation plus 999
notifications.

This layers on top of (not instead of) the two coalescing stages the
executor already performs per sweep: in-sweep digest dedup and
array-of-machines ``batch_key()`` batching.  The coalescer is the
cross-submission stage; it is digest-keyed, so "identical" means what
:func:`~repro.exec.job.request_digest` means — same resolved program
bits, same inputs, same platform, same package.

Claims are thread-primitive based (jobs execute on worker threads, not
on the event loop) and crash-safe: the owner resolves its claims in a
``finally`` block, so followers are never stranded by a failed owner —
they receive the error instead.  An owner that dies *without* a result
(worker crash, cancellation) resolves with ``crashed=True``, and exactly
one follower **inherits ownership** via :meth:`InflightCoalescer.inherit`:
it executes the run itself (a *handoff*, counted in
:attr:`InflightCoalescer.handoffs`) while the rest wait on its successor
claim.
"""

from __future__ import annotations

import threading


class Claim:
    """One digest's slot in the in-flight table.

    Followers share the owner's claim object and block in :meth:`wait`
    until the owner calls :meth:`resolve`; ownership itself is decided
    by :meth:`InflightCoalescer.claim`, which tells each claimant
    separately whether it won the slot.

    :ivar owner_trace: the owner's :class:`~repro.obs.context.Span` /
        trace identity (whatever the owner passed to ``claim``), so
        followers can link their spans to the owner's — the cross-job
        edge in the trace graph.
    :ivar crashed: set by :meth:`resolve` when the owner died without
        producing a result; tells followers to take over instead of
        surfacing the error.
    :ivar successor: the claim that superseded this one after a crash
        (set by :meth:`InflightCoalescer.inherit`); later followers
        wait on it instead of starting their own takeover.
    """

    def __init__(self, digest: str, owner_trace=None):
        self.digest = digest
        self.owner_trace = owner_trace
        self.crashed = False
        self.successor: "Claim | None" = None
        self._event = threading.Event()
        self._payload: dict | None = None
        self._error: str | None = None

    def resolve(self, payload: dict | None, error: str | None, *,
                crashed: bool = False) -> None:
        """Publish the owner's result and wake every follower."""
        self._payload = payload
        self._error = error
        self.crashed = crashed
        self._event.set()

    def wait(self, timeout: float | None = None
             ) -> tuple[dict | None, str | None]:
        """Block until resolved; ``(None, error)`` on timeout."""
        if not self._event.wait(timeout):
            return None, (f"coalesced run {self.digest[:12]} timed out "
                          "waiting for its in-flight owner")
        return self._payload, self._error


class InflightCoalescer:
    """Digest-keyed table of in-flight executions.

    ``owned`` / ``coalesced`` count claims handed out since startup;
    ``inflight`` is the current table size; ``handoffs`` counts the
    times a follower inherited a crashed owner's digest.  All four feed
    the service's ``/v1/metrics`` snapshot and the Prometheus plane.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: dict[str, Claim] = {}
        self.owned = 0
        self.coalesced = 0
        self.handoffs = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def claim(self, digest: str, *, trace=None) -> tuple[Claim, bool]:
        """Claim a digest; returns ``(claim, owned)``.

        Exactly one claimant per in-flight cycle sees ``owned=True``
        and **must** eventually call :meth:`resolve` for the digest
        (normally via ``try/finally``), or followers block until their
        wait timeout.  Everyone else shares the owner's claim and just
        waits on it.

        :param trace: the claimant's trace identity; stored on the
            claim as :attr:`Claim.owner_trace` when it wins the slot,
            so followers can span-link to the owner.
        """
        with self._lock:
            claim = self._inflight.get(digest)
            if claim is None:
                claim = Claim(digest, owner_trace=trace)
                self._inflight[digest] = claim
                self.owned += 1
                return claim, True
            self.coalesced += 1
            return claim, False

    def resolve(self, digest: str, payload: dict | None,
                error: str | None, *, crashed: bool = False) -> None:
        """Owner hand-off: publish the result, retire the in-flight slot.

        New claims for the digest after this point start a fresh cycle
        (they will normally be served by the result cache instead).

        :param crashed: the owner is terminating without a result;
            followers observing this re-claim the digest and execute
            themselves rather than propagating the error.
        """
        with self._lock:
            claim = self._inflight.pop(digest, None)
        if claim is not None:
            claim.resolve(payload, error, crashed=crashed)

    def inherit(self, claim: Claim, *, trace=None) -> tuple[Claim, bool]:
        """Take over a *crashed* claim; returns ``(successor, inherited)``.

        Exactly one follower per crashed claim sees ``inherited=True``
        (and is counted as a handoff) — the decision is made on the
        crashed claim itself, so the winner is unique even when the
        takeover run finishes before slower followers wake up (a plain
        re-``claim`` would hand a second "ownership" to anyone arriving
        after the successor resolved).  Losers receive the successor
        claim to wait on.  If a *fresh* submission claimed the digest
        between the crash and this call, that claim is the successor
        and nobody inherits.
        """
        with self._lock:
            if claim.successor is None:
                existing = self._inflight.get(claim.digest)
                if existing is not None and existing is not claim:
                    claim.successor = existing
                else:
                    successor = Claim(claim.digest, owner_trace=trace)
                    claim.successor = successor
                    self._inflight[claim.digest] = successor
                    self.owned += 1
                    self.handoffs += 1
                    return successor, True
            self.coalesced += 1
            return claim.successor, False

    def as_dict(self) -> dict:
        with self._lock:
            return {"owned": self.owned, "coalesced": self.coalesced,
                    "inflight": len(self._inflight),
                    "handoffs": self.handoffs}
