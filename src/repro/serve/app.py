"""The sweep service: jobs, worker threads, and the shared cache tier.

:class:`SweepService` is the long-lived object behind ``repro serve``.
It owns one :class:`~repro.exec.scheduler.SweepExecutor` (process pool,
result cache, array-of-machines batching), a job table, and the
cross-submission :class:`~repro.serve.coalescer.InflightCoalescer`.
Each submitted :class:`~repro.exec.job.SweepSpec` becomes a
:class:`Job` executed on a worker thread:

1. every request is content-addressed with
   :func:`~repro.exec.job.request_digest`;
2. each unique digest is claimed in the coalescer — digests another
   job is already simulating are *followed*, not re-executed;
3. the owned remainder runs through the shared executor (which applies
   its own cache lookup, in-sweep dedup and batch coalescing);
4. outcomes stream into the job's manifest directory
   (``runs.jsonl`` + ``manifest.json``, the same artifacts
   ``repro sweep`` writes), which also backs the
   ``GET /v1/sweeps/{id}/events`` stream.

The HTTP front end lives in :mod:`repro.serve.routes`; this module is
HTTP-free and directly usable in-process (the end-to-end tests do).
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

from .. import __version__
from ..exec import (
    DiskCache,
    MemoryCache,
    SweepExecutor,
    SweepSpec,
    TieredCache,
    request_digest,
)
from ..exec.progress import SweepMetrics
from ..exec.scheduler import RunOutcome
from ..exec.wire import WIRE_SCHEMA
from ..obs.context import TraceContext
from ..obs.instruments import ServiceInstruments
from ..obs.log import emit
from ..obs.spans import SpanRecorder
from ..telemetry import MetricsRegistry, SweepManifestWriter
from .coalescer import InflightCoalescer

#: job lifecycle states
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
TERMINAL = (DONE, FAILED)


class Job:
    """One submitted sweep and everything the API reports about it.

    Every job carries one :class:`~repro.obs.spans.SpanRecorder` — its
    request's span tree, continuing the client's trace when the
    submission propagated one.  ``GET /v1/sweeps/{id}/trace`` exports
    it live; ``trace.json`` in the job directory persists it.
    """

    def __init__(self, job_id: str, spec: SweepSpec, directory: Path, *,
                 trace: TraceContext | None = None):
        self.id = job_id
        self.spec = spec
        self.directory = directory
        self.status = QUEUED
        self.error: str | None = None
        self.submitted = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.completed = 0
        self.outcomes: list[RunOutcome] | None = None
        self.metrics: SweepMetrics | None = None
        self.recorder = SpanRecorder(
            trace_id=trace.trace_id if trace is not None else None)
        self.span = None                #: the job-lifetime span
        self.queue_wait: float | None = None

    @property
    def trace_id(self) -> str:
        return self.recorder.trace_id

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @staticmethod
    def _source(outcome: RunOutcome) -> str:
        if outcome.error is not None:
            return "error"
        if outcome.cached:
            return "cache"
        if outcome.coalesced:
            return "coalesced"
        if outcome.deduped:
            return "deduped"
        return "executed"

    def to_json(self, *, runs: bool = False) -> dict:
        """The job resource of ``GET /v1/sweeps/{id}``."""
        doc = {
            "id": self.id,
            "name": self.spec.name,
            "status": self.status,
            "error": self.error,
            "trace_id": self.trace_id,
            "total": len(self.spec),
            "completed": self.completed,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "metrics": (self.metrics.as_dict()
                        if self.metrics is not None else None),
        }
        outcomes = self.outcomes
        if runs and outcomes is not None:
            doc["runs"] = [
                {
                    "index": outcome.index,
                    "label": outcome.request.label,
                    "digest": outcome.digest,
                    "source": self._source(outcome),
                    "error": outcome.error,
                    "golden_match": outcome.golden_match,
                    "elapsed": outcome.elapsed,
                }
                for outcome in outcomes
            ]
        return doc


class _ManifestProxy:
    """Adapter the shared executor streams owned-run rows through.

    The executor numbers outcomes within the subset it was handed;
    the proxy remaps them to job-level indices before they reach the
    job's :class:`~repro.telemetry.manifest.SweepManifestWriter`, and
    swallows ``finalize`` — the service finalizes once the coalesced
    and duplicate rows are in too.
    """

    def __init__(self, job: Job, writer: SweepManifestWriter,
                 index_map: list[int]):
        self._job = job
        self._writer = writer
        self._index_map = index_map

    def note_outcome(self, outcome, record=None) -> None:
        remapped = replace(outcome, index=self._index_map[outcome.index])
        self._writer.note_outcome(remapped)
        self._job.completed += 1

    def finalize(self, **kwargs) -> None:
        pass


class _ExecObserver:
    """Executor callbacks → spans and structured log events.

    One instance per job hands the executor's phase boundaries and
    per-outcome notifications to the job's span recorder: the
    cache-tier lookup and execute phases become stage spans, every
    outcome becomes a ``run`` span carrying digest / provenance /
    cache-tier args.
    """

    def __init__(self, job: Job, parent: TraceContext):
        self._job = job
        self._parent = parent

    def on_phase(self, name: str, started: float, ended: float,
                 **info) -> None:
        label = "cache-tier lookup" if name == "cache" else name
        self._job.recorder.record(label, name, self._parent,
                                  started, ended, args=info)
        emit(f"exec.{name}", trace_id=self._job.trace_id,
             job_id=self._job.id, **info)

    def on_outcome(self, outcome, record=None) -> None:
        end = time.time()
        start = end - max(outcome.elapsed or 0.0, 0.0)
        args = {"digest": outcome.digest[:12],
                "source": Job._source(outcome)}
        tier = getattr(outcome, "cache_tier", None)
        if tier is not None:
            args["cache_tier"] = tier
        self._job.recorder.record(f"run {outcome.request.label}", "run",
                                  self._parent, start, end, args=args)
        emit("run.outcome", trace_id=self._job.trace_id,
             job_id=self._job.id, label=outcome.request.label,
             digest=outcome.digest[:12], source=args["source"],
             cache_tier=tier, error=outcome.error,
             elapsed=round(outcome.elapsed or 0.0, 4))


def default_service_cache(cache_dir=None, *, remote=None) -> TieredCache:
    """The service's standard tier stack: memory -> disk [-> peer]."""
    return TieredCache(MemoryCache(max_entries=512), DiskCache(cache_dir),
                       remote=remote)


class SweepService:
    """Job orchestration behind the HTTP API (and for direct embedding).

    :param cache: any object speaking the cache protocol; ``None``
        builds :func:`default_service_cache`.
    :param state_dir: root for per-job manifest directories
        (``<state_dir>/jobs/<id>/runs.jsonl``).
    :param jobs: executor worker processes (``0`` = in-process serial).
    :param concurrency: worker *threads* driving sweeps; at least 2 so
        concurrent submissions can coalesce instead of queueing.
    :param coalesce_timeout: seconds a follower waits on an in-flight
        owner before reporting an error (safety valve, not a tuning
        knob — owners resolve their claims even when they fail).
    """

    def __init__(self, *, cache=None, state_dir="serve-state", jobs: int = 0,
                 batch: bool = True, timeout: float | None = None,
                 concurrency: int = 2, coalesce_timeout: float = 600.0,
                 profile: bool = False):
        self.cache = cache if cache is not None else default_service_cache()
        self.state_dir = Path(state_dir)
        self.executor = SweepExecutor(jobs=jobs, cache=self.cache,
                                      timeout=timeout, batch=batch,
                                      profile=profile)
        self.coalesce_timeout = coalesce_timeout
        self.coalescer = InflightCoalescer()
        self.jobs: dict[str, Job] = {}
        self.started_at = time.time()
        self._monotonic_start = time.monotonic()
        self._lock = threading.Lock()
        self._exec_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, concurrency),
            thread_name_prefix="repro-serve")
        self._runs_total: dict[str, int] = {
            "total": 0, "executed": 0, "cached": 0, "deduped": 0,
            "coalesced": 0, "failed": 0}
        #: executed runs a batch's entry guard refused (silent scalar
        #: fallbacks), by reason — feeds ``repro_batch_refused_total``
        self._batch_refused: dict[str, int] = {}
        self.instruments = ServiceInstruments(
            self, version=__version__, wire_schema=WIRE_SCHEMA)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        self.executor.close()

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._monotonic_start

    # -- submission ------------------------------------------------------

    def submit(self, spec: SweepSpec, *, trace: TraceContext | None = None,
               via: str | None = None) -> Job:
        """Accept a sweep; returns the queued :class:`Job` immediately.

        :param trace: the client's propagated context; when set, the
            job's span tree continues that trace (its root span parents
            to the client's span id).
        :param via: transport span name (e.g. ``"http POST /v1/sweeps"``)
            inserted between the client context and the job span; the
            HTTP front end sets it so the span tree names the receive
            stage even though the service itself is transport-free.
        """
        job_id = uuid.uuid4().hex[:12]
        job = Job(job_id, spec, self.state_dir / "jobs" / job_id,
                  trace=trace)
        parent = trace
        http_span = None
        if via is not None:
            http_span = job.recorder.begin(via, "http", parent=parent)
            parent = http_span.context
        job.span = job.recorder.begin(f"job {spec.name}", "job",
                                      parent=parent, job_id=job_id,
                                      runs=len(spec))
        with self._lock:
            self.jobs[job_id] = job
        self._pool.submit(self._run_job, job)
        if http_span is not None:
            job.recorder.finish(http_span)
        emit("job.submit", trace_id=job.trace_id, job_id=job_id,
             name=spec.name, runs=len(spec),
             propagated=trace is not None)
        return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self.jobs.get(job_id)

    def run_payload(self, digest: str) -> dict | None:
        """Cache lookup for ``GET /v1/runs/{digest}``."""
        return self.cache.get(digest)

    def store_payload(self, digest: str, payload: dict) -> None:
        """Peer write-through for ``PUT /v1/runs/{digest}``."""
        self.cache.put(digest, payload)

    # -- execution (worker thread) ---------------------------------------

    def _run_job(self, job: Job) -> None:
        job.queue_wait = time.time() - job.submitted
        self.instruments.observe_queue_wait(job.queue_wait)
        try:
            self._execute_job(job)
        except Exception as exc:    # noqa: BLE001 — job-level isolation
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = FAILED
            job.finished = time.time()
            emit("job.failed", level=logging.ERROR, exc_info=exc,
                 trace_id=job.trace_id, job_id=job.id, error=job.error)
        finally:
            if job.span is not None:
                job.recorder.finish(job.span, status=job.status,
                                    error=job.error)
            latency = (job.finished or time.time()) - job.submitted
            self.instruments.observe_request_latency(latency)
            self._write_trace(job)
            emit("job.done", trace_id=job.trace_id, job_id=job.id,
                 status=job.status, completed=job.completed,
                 queue_wait_ms=round(job.queue_wait * 1000, 3),
                 latency_ms=round(latency * 1000, 3))

    def _write_trace(self, job: Job) -> None:
        """Persist the job's span tree next to its manifest artifacts."""
        try:
            job.directory.mkdir(parents=True, exist_ok=True)
            doc = job.recorder.to_perfetto(
                meta={"job_id": job.id, "name": job.spec.name})
            path = job.directory / "trace.json"
            path.write_text(json.dumps(doc, sort_keys=True) + "\n")
        except OSError:
            pass                     # observability must not fail the job

    def _execute_job(self, job: Job) -> None:
        job.status = RUNNING
        job.started = time.time()
        jctx = job.span.context
        recorder = job.recorder
        emit("job.start", trace_id=job.trace_id, job_id=job.id,
             runs=len(job.spec))
        metrics = SweepMetrics(total=len(job.spec))
        requests = list(job.spec.requests)
        digests = [request_digest(request) for request in requests]
        writer = SweepManifestWriter(job.directory, name=job.spec.name)
        observer = _ExecObserver(job, jctx)

        # claim each unique digest once, preserving first-seen order
        claims = {}
        owned_here = {}
        first_index = {}
        with recorder.span("coalesce claim", "coalesce",
                           parent=jctx) as claim_span:
            for index, digest in enumerate(digests):
                if digest not in claims:
                    claims[digest], owned_here[digest] = \
                        self.coalescer.claim(digest, trace=jctx)
                    first_index[digest] = index
            owned = [digest for digest in claims if owned_here[digest]]
            claim_span.args.update(unique=len(claims), owned=len(owned),
                                   followed=len(claims) - len(owned))
        emit("coalesce.claim", trace_id=job.trace_id, job_id=job.id,
             unique=len(claims), owned=len(owned),
             followed=len(claims) - len(owned))

        executed: dict[str, RunOutcome] = {}
        try:
            if owned:
                proxy = _ManifestProxy(job, writer,
                                       [first_index[d] for d in owned])
                with self._exec_lock:
                    for outcome in self.executor.run(
                            [requests[first_index[d]] for d in owned],
                            manifest=proxy, observer=observer,
                            trace_id=job.trace_id):
                        executed[outcome.digest] = outcome
        finally:
            # resolve every owned claim, crash or not — followers must
            # receive *something*.  A claim with no outcome means this
            # owner died mid-run: mark it crashed so the first follower
            # inherits the digest instead of surfacing the error.
            for digest in owned:
                outcome = executed.get(digest)
                if outcome is not None:
                    self.coalescer.resolve(digest, outcome.payload,
                                           outcome.error)
                else:
                    self.coalescer.resolve(
                        digest, None,
                        "in-flight owner failed before producing a result",
                        crashed=True)

        # join the digests another submission owns
        followed: dict[str, tuple[dict | None, str | None]] = {}
        for digest, claim in claims.items():
            if owned_here[digest]:
                continue
            result = self._follow(job, claim, digest,
                                  requests[first_index[digest]],
                                  first_index[digest], writer, observer,
                                  executed)
            if result is not None:
                followed[digest] = result

        # assemble outcomes in request order; stream the rows the
        # executor did not write (followers + in-job duplicates)
        outcomes: list[RunOutcome] = []
        for index, (request, digest) in enumerate(zip(requests, digests)):
            base = executed.get(digest)
            if base is not None:
                if index == first_index[digest]:
                    outcome = base
                else:
                    outcome = replace(base, index=index, deduped=True)
                    writer.note_outcome(outcome)
                    job.completed += 1
            else:
                payload, error = followed[digest]
                outcome = RunOutcome(
                    index, request, digest, payload=payload, error=error,
                    coalesced=True, deduped=index != first_index[digest])
                writer.note_outcome(outcome)
                job.completed += 1
            outcomes.append(outcome)
            metrics.note(
                index, request.label, cached=outcome.cached,
                failed=outcome.error is not None,
                elapsed=(outcome.elapsed
                         if index == first_index[digest]
                         and not outcome.coalesced else 0.0),
                worker=outcome.worker,
                batch=(outcome.payload or {}).get("batch_size", 0),
                deduped=outcome.deduped, coalesced=outcome.coalesced,
                cache_tier=getattr(outcome, "cache_tier", None))

        metrics.finish()
        writer.finalize(metrics=metrics, cache=self.cache, spec=job.spec,
                        trace_id=job.trace_id,
                        profile=(self.executor.last_profile
                                 if owned else None))
        job.metrics = metrics
        job.outcomes = outcomes
        job.completed = len(outcomes)
        job.status = DONE
        job.finished = time.time()
        with self._lock:
            totals = self._runs_total
            totals["total"] += len(outcomes)
            totals["executed"] += (metrics.executed - metrics.dedup_hits
                                   - metrics.coalesced_hits)
            totals["cached"] += metrics.cache_hits
            totals["deduped"] += metrics.dedup_hits
            totals["coalesced"] += metrics.coalesced_hits
            totals["failed"] += metrics.failures
            refused = self._batch_refused
            for outcome in outcomes:
                if outcome.cached or outcome.deduped or outcome.coalesced:
                    continue
                reason = (outcome.payload or {}).get("batch_refused")
                if reason:
                    refused[reason] = refused.get(reason, 0) + 1

    def _follow(self, job: Job, claim, digest: str, request, index: int,
                writer: SweepManifestWriter, observer,
                executed: dict[str, RunOutcome]
                ) -> tuple[dict | None, str | None] | None:
        """Wait on another submission's in-flight run for ``digest``.

        Normally returns the owner's ``(payload, error)``.  When the
        owner *crashed* (resolved without a result), the first follower
        to inherit the digest takes ownership — it executes the run
        itself (recorded in ``executed``, streamed through ``writer``)
        and returns ``None``; later followers wait on the inherited
        claim as usual.  The handoff span-link and log line are emitted
        exactly once, by the inheriting follower.
        """
        recorder = job.recorder
        jctx = job.span.context
        span = recorder.begin(f"coalesce wait {digest[:12]}", "coalesce",
                              parent=jctx, digest=digest[:12])
        owner = claim.owner_trace
        if owner is not None and owner.trace_id != job.trace_id:
            span.links.append({"trace_id": owner.trace_id,
                               "span_id": owner.span_id})
        payload, error = claim.wait(self.coalesce_timeout)
        if not claim.crashed:
            recorder.finish(span, outcome="error" if error else "ok")
            emit("coalesce.follow", trace_id=job.trace_id, job_id=job.id,
                 digest=digest[:12], ok=error is None,
                 owner_trace_id=owner.trace_id if owner else None)
            return payload, error

        # the owner died without a result — exactly one follower
        # inherits the digest (decided on the crashed claim itself)
        takeover, inherited = self.coalescer.inherit(claim, trace=jctx)
        if not inherited:
            # another claimant owns the successor; wait on its claim
            recorder.finish(span, outcome="handoff-followed")
            return takeover.wait(self.coalesce_timeout)
        recorder.finish(span, outcome="handoff")
        emit("coalesce.handoff", level=logging.WARNING,
             trace_id=job.trace_id, job_id=job.id, digest=digest[:12],
             owner_trace_id=owner.trace_id if owner else None)
        try:
            proxy = _ManifestProxy(job, writer, [index])
            with self._exec_lock:
                for outcome in self.executor.run([request], manifest=proxy,
                                                 observer=observer,
                                                 trace_id=job.trace_id):
                    executed[digest] = outcome
        finally:
            outcome = executed.get(digest)
            self.coalescer.resolve(
                digest,
                outcome.payload if outcome is not None else None,
                outcome.error if outcome is not None
                else "handoff execution failed before producing a result",
                crashed=outcome is None)
        return None

    # -- observability ---------------------------------------------------

    def health(self) -> dict:
        return {
            "ok": True,
            "service": "repro-serve",
            "version": __version__,
            "wire_schema": WIRE_SCHEMA,
            "uptime_seconds": round(self.uptime_seconds, 3),
        }

    def _service_metrics(self) -> dict:
        with self._lock:
            jobs = list(self.jobs.values())
            runs = dict(self._runs_total)
        by_status = {status: sum(1 for job in jobs if job.status == status)
                     for status in (QUEUED, RUNNING, DONE, FAILED)}
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "jobs": {"submitted": len(jobs), **by_status},
            "runs": runs,
        }

    def _cache_metrics(self) -> dict:
        doc = {"backend": type(self.cache).__name__,
               **self.cache.stats.as_dict()}
        tiers = getattr(self.cache, "tier_stats", None)
        if callable(tiers):
            doc["tiers"] = {tier: stats.as_dict()
                            for tier, stats in tiers().items()}
        remote = getattr(self.cache, "remote", None)
        if remote is not None:
            doc["remote"] = {"backend": type(remote).__name__,
                             "disabled": remote.disabled,
                             "errors": remote.errors,
                             **remote.stats.as_dict()}
        return doc

    def metrics_registry(self) -> MetricsRegistry:
        """The ``/v1/metrics`` sources: service, coalescer, cache."""
        registry = MetricsRegistry()
        registry.add_source("service", self._service_metrics)
        registry.add_source("coalescer", self.coalescer.as_dict)
        registry.add_source("cache", self._cache_metrics)
        return registry

    def prometheus_text(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — the exposition body.

        The curated instrument families first, then the legacy JSON
        snapshot flattened into ``repro_snapshot{path=...}`` gauges so
        every historical metric stays scrapeable under one document.
        """
        return self.instruments.render(
            snapshot=self.metrics_registry().snapshot())
