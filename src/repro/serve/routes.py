"""HTTP endpoint handlers: the ``/v1`` API surface.

Every route is documented request-by-request in ``docs/service.md``;
this module only translates between HTTP and the
:class:`~repro.serve.app.SweepService` — validation errors become the
standard error envelope via :class:`~repro.serve.http.ApiError`, wire
documents are checked with :mod:`repro.exec.wire` before anything
touches the job table.

========  ==========================  ==================================
method    path                        purpose
========  ==========================  ==================================
GET       ``/v1/healthz``             liveness + build/wire versions
GET       ``/v1/metrics``             metrics snapshot (JSON) or, with
                                      ``?format=prometheus``, the
                                      Prometheus text exposition
POST      ``/v1/sweeps``              submit a ``sweep_spec`` document
GET       ``/v1/sweeps/{id}``         job status, counts, per-run rows
GET       ``/v1/sweeps/{id}/trace``   the request's span tree
                                      (Perfetto trace-event JSON)
GET       ``/v1/sweeps/{id}/events``  chunked stream of run-row lines
GET       ``/v1/runs/{digest}``       one cached result, by digest
PUT       ``/v1/runs/{digest}``       peer write-through into the cache
========  ==========================  ==================================
"""

from __future__ import annotations

import asyncio
import json

from ..exec.wire import (
    WireError,
    payload_from_wire,
    spec_from_wire,
    trace_from_wire,
)
from ..kernels import BENCHMARKS
from .app import SweepService
from .http import ApiError, Request, Response, Router

#: polling cadence of the events stream (the manifest writer flushes
#: every row, so this bounds added latency, not correctness)
EVENTS_POLL_SECONDS = 0.05

_DIGEST_CHARS = set("0123456789abcdef")


def _check_digest(digest: str) -> str:
    if len(digest) != 64 or not set(digest) <= _DIGEST_CHARS:
        raise ApiError(400, "bad_digest",
                       "digest must be 64 lowercase hex characters")
    return digest


def build_router(service: SweepService) -> Router:
    """Wire every ``/v1`` route onto a service instance."""
    router = Router()

    async def healthz(request: Request) -> Response:
        return Response(service.health())

    async def metrics(request: Request) -> Response:
        fmt = request.query.get("format", "json")
        if fmt == "prometheus":
            return Response(
                text=service.prometheus_text(),
                content_type="text/plain; version=0.0.4; charset=utf-8")
        if fmt != "json":
            raise ApiError(400, "bad_format",
                           f"unknown metrics format {fmt!r} "
                           "(have: json, prometheus)")
        return Response(service.metrics_registry().snapshot())

    async def submit_sweep(request: Request) -> Response:
        doc = request.json()
        try:
            spec = spec_from_wire(doc)
        except WireError as exc:
            raise ApiError(400, "bad_wire_document", str(exc))
        for index, run in enumerate(spec.requests):
            if run.benchmark not in BENCHMARKS:
                raise ApiError(
                    422, "unknown_benchmark",
                    f"requests[{index}]: unknown benchmark "
                    f"{run.benchmark!r} (have {sorted(BENCHMARKS)})")
        # header beats wire field (the header is per-hop, the wire
        # field the fallback for header-stripping transports)
        trace = request.trace or trace_from_wire(doc)
        job = service.submit(spec, trace=trace, via="http POST /v1/sweeps")
        return Response(job.to_json(), status=202,
                        headers={"Location": f"/v1/sweeps/{job.id}",
                                 "x-trace-id": job.trace_id})

    def _job(job_id: str):
        job = service.job(job_id)
        if job is None:
            raise ApiError(404, "not_found", f"no sweep job {job_id!r}")
        return job

    async def sweep_status(request: Request, job_id: str) -> Response:
        return Response(_job(job_id).to_json(runs=True))

    async def sweep_trace(request: Request, job_id: str) -> Response:
        job = _job(job_id)
        return Response(job.recorder.to_perfetto(
            meta={"job_id": job.id, "name": job.spec.name,
                  "status": job.status}))

    async def sweep_events(request: Request, job_id: str) -> Response:
        job = _job(job_id)

        async def stream():
            runs_path = job.directory / "runs.jsonl"
            offset = 0
            while True:
                terminal = job.terminal    # read *before* draining rows
                if runs_path.is_file():
                    with open(runs_path, "rb") as handle:
                        handle.seek(offset)
                        fresh = handle.read()
                    if fresh:
                        complete = fresh[:fresh.rfind(b"\n") + 1]
                        offset += len(complete)
                        if complete:
                            yield complete
                if terminal:
                    break
                await asyncio.sleep(EVENTS_POLL_SECONDS)
            end = {"event": "end", "status": job.status, "error": job.error}
            yield (json.dumps(end, sort_keys=True) + "\n").encode()

        return Response(stream=stream(),
                        content_type="application/x-ndjson")

    async def get_run(request: Request, digest: str) -> Response:
        payload = service.run_payload(_check_digest(digest))
        if payload is None:
            raise ApiError(404, "not_found",
                           f"no cached result for digest {digest[:12]}…")
        from ..exec.wire import payload_to_wire

        return Response(payload_to_wire(digest, payload))

    async def put_run(request: Request, digest: str) -> Response:
        _check_digest(digest)
        try:
            sent, payload = payload_from_wire(request.json())
        except WireError as exc:
            raise ApiError(400, "bad_wire_document", str(exc))
        if sent != digest:
            raise ApiError(409, "digest_mismatch",
                           "document digest does not match the URL")
        service.store_payload(digest, payload)
        return Response(status=204, payload=None)

    router.add("GET", "/v1/healthz", healthz)
    router.add("GET", "/v1/metrics", metrics)
    router.add("POST", "/v1/sweeps", submit_sweep)
    router.add("GET", "/v1/sweeps/{job_id}", sweep_status)
    router.add("GET", "/v1/sweeps/{job_id}/trace", sweep_trace)
    router.add("GET", "/v1/sweeps/{job_id}/events", sweep_events)
    router.add("GET", "/v1/runs/{digest}", get_run)
    router.add("PUT", "/v1/runs/{digest}", put_run)
    return router
