"""Minimal asyncio HTTP/1.1 layer for the sweep service.

The service speaks a deliberately small slice of HTTP — JSON request
bodies, JSON responses, one streamed (chunked) endpoint — so instead of
pulling in a framework it runs on ``asyncio.start_server`` plus the
~200 lines here: a request parser, a path-pattern router and a response
writer.  Connections are one-shot (``Connection: close``), which every
stdlib client handles and which keeps the state machine trivial.

Handlers are ``async`` callables taking a :class:`Request` (plus named
path parameters) and returning a :class:`Response`; raising
:class:`ApiError` anywhere produces the documented JSON error envelope
(``docs/service.md``)::

    {"error": {"status": 404, "code": "not_found", "message": "..."}}
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
import time
import uuid
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from ..obs.context import TraceContext
from ..obs.log import emit

#: request bodies beyond this are rejected with 413 (a full 8-channel
#: explicit-input sweep spec is ~1 MB; 64 MB is generous headroom)
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ApiError(Exception):
    """An error the handler wants rendered as the JSON error envelope."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def envelope(self) -> dict:
        return {"error": {"status": self.status, "code": self.code,
                          "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request.

    :ivar trace: the client's :class:`~repro.obs.context.TraceContext`
        when a well-formed ``traceparent`` header arrived; ``None``
        otherwise (the service starts a fresh trace).
    :ivar route: the route *pattern* that matched (e.g.
        ``/v1/sweeps/{job_id}``), set by :meth:`Router.dispatch` —
        bounded-cardinality, unlike :attr:`path`, so it is what metric
        labels use.
    """

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]            # keys lower-cased
    body: bytes = b""
    trace: TraceContext | None = None
    route: str | None = None

    def json(self):
        """The body parsed as JSON; 400 ``bad_json`` when it isn't."""
        if not self.body:
            raise ApiError(400, "bad_json", "request body is empty")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise ApiError(400, "bad_json",
                           f"request body is not valid JSON: {exc}")


@dataclass
class Response:
    """One response: a JSON document, raw bytes, or a chunked stream.

    :ivar payload: JSON-shaped object (serialized with sorted keys);
        ignored when ``stream`` or ``text`` is set.
    :ivar stream: async iterator of ``bytes`` chunks; sent with
        ``Transfer-Encoding: chunked``.
    :ivar text: raw pre-rendered body (e.g. the Prometheus exposition
        format); set ``content_type`` to match.
    """

    payload: object = None
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    stream: object = None
    content_type: str = "application/json"
    text: str | None = None

    def body_bytes(self) -> bytes:
        if self.text is not None:
            return self.text.encode()
        if self.payload is None:
            return b""
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode()


class Router:
    """Method + path-pattern dispatch with ``{name}`` captures.

    Patterns are segment-wise: ``/v1/sweeps/{job_id}/events`` matches
    exactly four segments and hands ``job_id`` to the handler as a
    keyword argument (URL-unquoted).
    """

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern, str, object]] = []

    def add(self, method: str, pattern: str, handler) -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method.upper(), regex, pattern, handler))

    async def dispatch(self, request: Request) -> Response:
        allowed: list[str] = []
        for method, regex, pattern, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            params = {key: unquote(value)
                      for key, value in match.groupdict().items()}
            request.route = pattern
            return await handler(request, **params)
        if allowed:
            raise ApiError(405, "method_not_allowed",
                           f"{request.path} supports {sorted(set(allowed))}, "
                           f"not {request.method}")
        raise ApiError(404, "not_found", f"no route for {request.path}")


async def read_request(reader: asyncio.StreamReader) -> Request:
    """Parse one request off the stream; :class:`ApiError` on bad input."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        raise ApiError(400, "bad_request", "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ApiError(413, "headers_too_large",
                       "request headers exceed the size limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ApiError(413, "headers_too_large",
                       "request headers exceed the size limit")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ApiError(400, "bad_request",
                       f"malformed request line {lines[0]!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           "malformed Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "body_too_large",
                           f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    return Request(method.upper(), parts.path or "/", query, headers, body,
                   trace=TraceContext.from_traceparent(
                       headers.get("traceparent")))


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    """Serialize one response (fixed-length or chunked) and flush it."""
    status = response.status
    reason = _REASONS.get(status, "Unknown")
    headers = {"Connection": "close",
               "Content-Type": response.content_type}
    headers.update(response.headers)
    if response.stream is None:
        body = response.body_bytes()
        headers["Content-Length"] = str(len(body))
        writer.write(_head(status, reason, headers) + body)
        await writer.drain()
        return
    headers["Transfer-Encoding"] = "chunked"
    writer.write(_head(status, reason, headers))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _head(status: int, reason: str, headers: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def make_handler(router: Router, observer=None):
    """The ``asyncio.start_server`` connection callback for a router.

    :param observer: optional
        :class:`~repro.obs.instruments.ServiceInstruments`; when set,
        every request updates the HTTP counters / latency histogram /
        in-flight gauge.
    """

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        request: Request | None = None
        if observer is not None:
            observer.http_inflight.inc()
        try:
            try:
                request = await read_request(reader)
                response = await router.dispatch(request)
            except ApiError as exc:
                response = Response(exc.envelope(), status=exc.status)
            except Exception as exc:   # noqa: BLE001 — never kill the server
                # An unexpected (non-ApiError) failure: the envelope
                # carries an error_id the operator can grep the server
                # log for, where the full traceback lands.
                error_id = uuid.uuid4().hex[:12]
                trace_id = (request.trace.trace_id
                            if request is not None and request.trace else None)
                emit("http.error", level=logging.ERROR, exc_info=exc,
                     error_id=error_id, trace_id=trace_id,
                     method=request.method if request else None,
                     path=request.path if request else None,
                     error=f"{type(exc).__name__}: {exc}")
                envelope = ApiError(500, "internal_error",
                                    f"{type(exc).__name__}: {exc}").envelope()
                envelope["error"]["error_id"] = error_id
                response = Response(envelope, status=500)
            if request is not None and request.trace is not None:
                response.headers.setdefault("x-trace-id",
                                            request.trace.trace_id)
            await write_response(writer, response)
            elapsed = time.perf_counter() - started
            method = request.method if request is not None else "?"
            route = (request.route or request.path) if request else "?"
            if observer is not None:
                observer.observe_http(method, route, response.status, elapsed)
            emit("http.access", method=method,
                 path=request.path if request else None,
                 route=request.route if request else None,
                 status=response.status,
                 duration_ms=round(elapsed * 1000, 3),
                 trace_id=(request.trace.trace_id
                           if request is not None and request.trace else None))
        except (ConnectionError, asyncio.CancelledError):
            pass                       # client went away mid-response
        finally:
            if observer is not None:
                observer.http_inflight.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return handle
