"""Minimal asyncio HTTP/1.1 layer for the sweep service.

The service speaks a deliberately small slice of HTTP — JSON request
bodies, JSON responses, one streamed (chunked) endpoint — so instead of
pulling in a framework it runs on ``asyncio.start_server`` plus the
~200 lines here: a request parser, a path-pattern router and a response
writer.  Connections are one-shot (``Connection: close``), which every
stdlib client handles and which keeps the state machine trivial.

Handlers are ``async`` callables taking a :class:`Request` (plus named
path parameters) and returning a :class:`Response`; raising
:class:`ApiError` anywhere produces the documented JSON error envelope
(``docs/service.md``)::

    {"error": {"status": 404, "code": "not_found", "message": "..."}}
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: request bodies beyond this are rejected with 413 (a full 8-channel
#: explicit-input sweep spec is ~1 MB; 64 MB is generous headroom)
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ApiError(Exception):
    """An error the handler wants rendered as the JSON error envelope."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def envelope(self) -> dict:
        return {"error": {"status": self.status, "code": self.code,
                          "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]            # keys lower-cased
    body: bytes = b""

    def json(self):
        """The body parsed as JSON; 400 ``bad_json`` when it isn't."""
        if not self.body:
            raise ApiError(400, "bad_json", "request body is empty")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise ApiError(400, "bad_json",
                           f"request body is not valid JSON: {exc}")


@dataclass
class Response:
    """One response: a JSON document, raw bytes, or a chunked stream.

    :ivar payload: JSON-shaped object (serialized with sorted keys);
        ignored when ``stream`` is set.
    :ivar stream: async iterator of ``bytes`` chunks; sent with
        ``Transfer-Encoding: chunked``.
    """

    payload: object = None
    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    stream: object = None
    content_type: str = "application/json"

    def body_bytes(self) -> bytes:
        if self.payload is None:
            return b""
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode()


class Router:
    """Method + path-pattern dispatch with ``{name}`` captures.

    Patterns are segment-wise: ``/v1/sweeps/{job_id}/events`` matches
    exactly four segments and hands ``job_id`` to the handler as a
    keyword argument (URL-unquoted).
    """

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern, object]] = []

    def add(self, method: str, pattern: str, handler) -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method.upper(), regex, handler))

    async def dispatch(self, request: Request) -> Response:
        allowed: list[str] = []
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            params = {key: unquote(value)
                      for key, value in match.groupdict().items()}
            return await handler(request, **params)
        if allowed:
            raise ApiError(405, "method_not_allowed",
                           f"{request.path} supports {sorted(set(allowed))}, "
                           f"not {request.method}")
        raise ApiError(404, "not_found", f"no route for {request.path}")


async def read_request(reader: asyncio.StreamReader) -> Request:
    """Parse one request off the stream; :class:`ApiError` on bad input."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        raise ApiError(400, "bad_request", "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ApiError(413, "headers_too_large",
                       "request headers exceed the size limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ApiError(413, "headers_too_large",
                       "request headers exceed the size limit")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ApiError(400, "bad_request",
                       f"malformed request line {lines[0]!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           "malformed Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "body_too_large",
                           f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    return Request(method.upper(), parts.path or "/", query, headers, body)


async def write_response(writer: asyncio.StreamWriter,
                         response: Response) -> None:
    """Serialize one response (fixed-length or chunked) and flush it."""
    status = response.status
    reason = _REASONS.get(status, "Unknown")
    headers = {"Connection": "close",
               "Content-Type": response.content_type}
    headers.update(response.headers)
    if response.stream is None:
        body = response.body_bytes()
        headers["Content-Length"] = str(len(body))
        writer.write(_head(status, reason, headers) + body)
        await writer.drain()
        return
    headers["Transfer-Encoding"] = "chunked"
    writer.write(_head(status, reason, headers))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode() + chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _head(status: int, reason: str, headers: dict[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def make_handler(router: Router):
    """The ``asyncio.start_server`` connection callback for a router."""

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
                response = await router.dispatch(request)
            except ApiError as exc:
                response = Response(exc.envelope(), status=exc.status)
            except Exception as exc:   # noqa: BLE001 — never kill the server
                error = ApiError(500, "internal_error",
                                 f"{type(exc).__name__}: {exc}")
                response = Response(error.envelope(), status=500)
            await write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass                       # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return handle
