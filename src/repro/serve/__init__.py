"""Simulation-as-a-service: the ``repro serve`` async sweep API.

The `exec` subsystem already made simulation results content-addressed,
cacheable and bit-deterministic; this package puts a long-lived HTTP
front door on it so many clients (and many machines) share one
simulation pool:

- :mod:`repro.serve.http` — minimal asyncio HTTP/1.1 layer (no
  framework; stdlib only).
- :mod:`repro.serve.coalescer` — cross-submission in-flight coalescing
  on :func:`~repro.exec.job.request_digest`.
- :mod:`repro.serve.app` — :class:`SweepService`: job table, worker
  threads, the shared :class:`~repro.exec.cache.TieredCache`.
- :mod:`repro.serve.routes` — the ``/v1`` endpoint handlers.
- :mod:`repro.serve.client` — blocking client (``repro client`` CLI).

Wire contract: ``docs/wire_schema.md``.  API reference:
``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import threading

from .app import Job, SweepService, default_service_cache
from .client import ServeClient, ServiceError
from .coalescer import InflightCoalescer
from .http import ApiError, Router, make_handler
from .routes import build_router

__all__ = [
    "ApiError",
    "InflightCoalescer",
    "Job",
    "Router",
    "ServeClient",
    "ServerHandle",
    "ServiceError",
    "SweepService",
    "build_router",
    "default_service_cache",
    "serve_forever",
    "start_server",
]


async def serve_forever(service: SweepService, host: str = "127.0.0.1",
                        port: int = 8642, *, ready=None) -> None:
    """Run the service's HTTP front end until cancelled.

    :param ready: optional callback invoked with the bound
        ``(host, port)`` once the socket is listening (the CLI prints
        the URL; tests grab the ephemeral port).
    """
    handler = make_handler(build_router(service),
                           observer=getattr(service, "instruments", None))
    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    async with server:
        await server.serve_forever()


class ServerHandle:
    """A server running on a background thread (tests, embedding).

    Created by :func:`start_server`; exposes ``base_url`` and
    :meth:`close`.  The owning service is *not* closed with the handle —
    callers that built the service close it themselves.
    """

    def __init__(self, service: SweepService, host: str, port: int):
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._bound = threading.Event()
        self.host, self.port = host, port

        def ready(address):
            self.host, self.port = address
            self._bound.set()

        self._task = None

        def run():
            self._task = self._loop.create_task(
                serve_forever(service, host, port, ready=ready))
            try:
                self._loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve-http")
        self._thread.start()
        if not self._bound.wait(10.0):
            raise RuntimeError("server failed to bind within 10s")

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._task.cancel)
            self._thread.join(10.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_server(service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> ServerHandle:
    """Start the HTTP front end on a background thread; ``port=0`` binds
    an ephemeral port (read it back from ``handle.port``)."""
    return ServerHandle(service, host, port)
