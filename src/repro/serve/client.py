"""Blocking client for the sweep service (the ``repro client`` CLI).

:class:`ServeClient` speaks the documented ``/v1`` wire protocol over
stdlib ``http.client`` — one connection per call, JSON in, JSON out,
with the service's error envelope surfaced as :class:`ServiceError`.
It is deliberately synchronous: callers are scripts, tests and the CLI,
where "submit, stream events, fetch results" reads best as straight-line
code.  (The *server* is the async side; see :mod:`repro.serve.app`.)
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from ..exec import SweepSpec
from ..exec.wire import payload_from_wire
from ..obs.context import TraceContext


class ServiceError(Exception):
    """An error envelope returned by the service (or transport trouble)."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class ServeClient:
    """Thin, connection-per-call client for one server.

    :param base_url: server root, e.g. ``http://127.0.0.1:8642``.
    :param timeout: socket timeout per call, in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0):
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} "
                             "(the service speaks plain http)")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8642
        self.timeout = timeout
        #: the trace context of the most recent :meth:`submit` — its
        #: ``trace_id`` names the request end-to-end (server logs, span
        #: tree, ``x-trace-id`` response headers)
        self.last_trace: TraceContext | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- transport -------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    @staticmethod
    def _raise_envelope(status: int, body: bytes) -> None:
        try:
            envelope = json.loads(body)["error"]
            raise ServiceError(envelope.get("status", status),
                               envelope.get("code", "unknown"),
                               envelope.get("message", ""))
        except (ValueError, KeyError, TypeError):
            raise ServiceError(status, "unknown",
                               body.decode(errors="replace")[:200])

    def _request(self, method: str, path: str, payload=None, *,
                 headers: dict | None = None):
        connection = self._connect()
        try:
            body = None
            merged = {"Accept": "application/json"}
            if headers:
                merged.update(headers)
            if payload is not None:
                body = json.dumps(payload).encode()
                merged["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=merged)
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                self._raise_envelope(response.status, data)
            return json.loads(data) if data else None
        finally:
            connection.close()

    # -- API surface -----------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of ``/v1/metrics``."""
        connection = self._connect()
        try:
            connection.request("GET", "/v1/metrics?format=prometheus",
                               headers={"Accept": "text/plain"})
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                self._raise_envelope(response.status, data)
            return data.decode()
        finally:
            connection.close()

    def submit(self, spec, *, trace: TraceContext | None = None) -> dict:
        """POST a sweep; accepts a :class:`SweepSpec` or a wire doc.

        Every submission carries a trace context — the given one or a
        fresh root — both as a ``traceparent`` header and embedded in
        the wire document, and remembers it as :attr:`last_trace` so
        callers can correlate server logs and the span tree.

        :returns: the job resource (``{"id": ..., "status": ...}``).
        """
        context = trace if trace is not None else TraceContext.new()
        self.last_trace = context
        doc = (spec.to_wire(trace=context) if isinstance(spec, SweepSpec)
               else dict(spec))
        if not isinstance(spec, SweepSpec) and "trace" not in doc:
            doc["trace"] = context.to_wire()
        return self._request("POST", "/v1/sweeps", payload=doc,
                             headers={"traceparent": context.traceparent()})

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/sweeps/{job_id}")

    def trace(self, job_id: str) -> dict:
        """The job's span tree (Perfetto trace-event JSON)."""
        return self._request("GET", f"/v1/sweeps/{job_id}/trace")

    def events(self, job_id: str):
        """Stream the job's run rows as parsed dicts, live.

        Yields one dict per ``runs.jsonl`` row as the server writes it,
        then the terminal ``{"event": "end", "status": ...}`` marker.
        The generator owns its connection; closing it mid-stream is
        fine.
        """
        connection = self._connect()
        try:
            connection.request("GET", f"/v1/sweeps/{job_id}/events",
                               headers={"Accept": "application/x-ndjson"})
            response = connection.getresponse()
            if response.status >= 400:
                self._raise_envelope(response.status, response.read())
            for raw in response:       # http.client decodes the chunking
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, *, poll: float = 0.1,
             timeout: float | None = 120.0) -> dict:
        """Poll until the job is terminal; returns the final resource."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll)

    def run_payload(self, digest: str) -> dict | None:
        """Fetch one cached result by digest; ``None`` when absent."""
        try:
            doc = self._request("GET", f"/v1/runs/{digest}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise
        _, payload = payload_from_wire(doc)
        return payload
