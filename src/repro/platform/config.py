"""Platform configuration for the ULP multi-core architecture.

Defaults mirror the target platform of Dogan et al. (DATE 2013), sec. III:
8 cores, a 64 kB data memory in 16 banks, a 96 kB instruction memory in
8 banks, central I-/D-crossbars with broadcast support, and (optionally)
the hardware synchronizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SyncPolicy(enum.Flag):
    """Which parts of the paper's synchronization technique are enabled.

    The paper evaluates two designs: *without synchronizer* (the DATE-2012
    predecessor) and *with synchronizer* (both mechanisms).  The individual
    flags expose the in-between points for ablation studies.

    ``HW_BARRIER``       — the hardware synchronizer block is present and
                           the ``SINC``/``SDEC`` ISE is honoured.
    ``DXBAR_SYNC_STALL`` — the enhanced D-Xbar serving policy: on a data
                           bank conflict among synchronous cores (equal
                           program counters) the already-served cores are
                           stalled until the whole group has been served.
    """

    NONE = 0
    HW_BARRIER = enum.auto()
    DXBAR_SYNC_STALL = enum.auto()
    FULL = HW_BARRIER | DXBAR_SYNC_STALL

    def flag_names(self) -> tuple[str, ...]:
        """The primitive member names in declaration order.

        The stable wire form of a policy: unlike ``repr`` or the raw
        ``value``, it survives member renumbering and is readable in
        cache keys and JSON payloads.
        """
        return tuple(
            flag.name for flag
            in (SyncPolicy.HW_BARRIER, SyncPolicy.DXBAR_SYNC_STALL)
            if self & flag)

    @classmethod
    def from_flag_names(cls, names) -> "SyncPolicy":
        """Inverse of :meth:`flag_names`."""
        policy = cls.NONE
        for name in names:
            policy |= cls[name]
        return policy


@dataclass(frozen=True)
class PlatformConfig:
    """Structural parameters of the simulated platform.

    :param num_cores: number of processing cores.
    :param dm_banks: number of data-memory banks (contiguous block mapping).
    :param dm_bank_words: 16-bit words per DM bank.
    :param im_banks: number of instruction-memory banks.
    :param im_bank_words: instructions per IM bank.
    :param policy: which synchronization mechanisms are enabled.
    :param max_cycles: safety bound for :meth:`Machine.run`.
    :param dm_interleaved: map DM addresses to banks low-order interleaved
        (``bank = addr % banks``) instead of the default contiguous blocks.

    Default bank mapping is contiguous ("block") in both memories: bank
    *b* of the DM covers ``[b * dm_bank_words, (b+1) * dm_bank_words)``.
    Each core's private channel buffer conventionally occupies its own
    bank, so bank conflicts arise from *shared* data — the conflict class
    the paper's enhanced D-Xbar policy addresses.  The interleaved option
    exists for architecture exploration: under SPMD private buffers it
    makes lockstep cores hit one bank at different addresses on *every*
    access, which is why the paper's platform uses block banking.
    """

    num_cores: int = 8
    dm_banks: int = 16
    dm_bank_words: int = 2048
    im_banks: int = 8
    im_bank_words: int = 6144
    policy: SyncPolicy = SyncPolicy.FULL
    max_cycles: int = 50_000_000
    dm_interleaved: bool = False
    #: crossbar broadcast support (the DATE-2012 predecessor's feature the
    #: synchronization technique exists to exploit); disable for ablation.
    im_broadcast: bool = True
    dm_broadcast: bool = True

    def __post_init__(self):
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if self.num_cores > 8:
            raise ValueError(
                "checkpoint words carry 8 identity flags (paper sec. IV), "
                "so at most 8 cores are supported")
        if self.dm_banks < 1 or self.im_banks < 1:
            raise ValueError("bank counts must be positive")

    @property
    def dm_words(self) -> int:
        return self.dm_banks * self.dm_bank_words

    @property
    def im_words(self) -> int:
        return self.im_banks * self.im_bank_words

    @property
    def has_synchronizer(self) -> bool:
        return bool(self.policy & SyncPolicy.HW_BARRIER)

    @property
    def has_dxbar_sync_stall(self) -> bool:
        return bool(self.policy & SyncPolicy.DXBAR_SYNC_STALL)

    def to_key(self) -> tuple:
        """Stable identity tuple for hashing and cache keys.

        The field order is fixed *here*, so keys do not depend on
        ``repr`` formatting or pickle dict order.
        """
        return ("PlatformConfig", self.num_cores, self.dm_banks,
                self.dm_bank_words, self.im_banks, self.im_bank_words,
                self.policy.flag_names(), self.max_cycles,
                self.dm_interleaved, self.im_broadcast, self.dm_broadcast)

    def to_json(self) -> dict:
        """JSON-safe dict; round-trips through :meth:`from_json`."""
        return {
            "num_cores": self.num_cores,
            "dm_banks": self.dm_banks,
            "dm_bank_words": self.dm_bank_words,
            "im_banks": self.im_banks,
            "im_bank_words": self.im_bank_words,
            "policy": list(self.policy.flag_names()),
            "max_cycles": self.max_cycles,
            "dm_interleaved": self.dm_interleaved,
            "im_broadcast": self.im_broadcast,
            "dm_broadcast": self.dm_broadcast,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PlatformConfig":
        data = dict(payload)
        data["policy"] = SyncPolicy.from_flag_names(data.get("policy", ()))
        return cls(**data)

    def dm_bank_of(self, address: int) -> int:
        """Bank index holding DM word ``address``."""
        if self.dm_interleaved:
            return address % self.dm_banks
        return address // self.dm_bank_words

    def im_bank_of(self, address: int) -> int:
        """Bank index holding IM word ``address``."""
        return address // self.im_bank_words


#: The paper's improved architecture (sec. III/IV).
WITH_SYNCHRONIZER = PlatformConfig(policy=SyncPolicy.FULL)

#: The DATE-2012 predecessor used as the baseline ("w/o synchronizer").
WITHOUT_SYNCHRONIZER = PlatformConfig(policy=SyncPolicy.NONE)
