"""Instruction crossbar with broadcast support.

Per cycle, each IM bank can serve exactly one *address*; every core fetching
that address is served by the same bank read (instruction broadcast, the key
power mechanism of the paper's platform).  Cores requesting a different
address in the same bank lose arbitration and are clock gated for the cycle.

Arbitration is rotating-priority per bank so that divergent cores make
round-robin progress instead of starving.
"""

from __future__ import annotations

from .config import PlatformConfig
from .trace import ActivityTrace


class InstructionCrossbar:
    """Per-cycle fetch arbitration over the banked instruction memory."""

    def __init__(self, config: PlatformConfig, trace: ActivityTrace):
        self._config = config
        self._trace = trace
        self._priority = [0] * config.im_banks

    def arbitrate(self, requests: dict[int, int]) -> set[int]:
        """Arbitrate one cycle of fetch requests.

        :param requests: ``core id -> instruction address`` for every core
            that wants to fetch this cycle.
        :returns: the set of core ids whose fetch was served.  Exactly one
            IM bank access is counted per served address.
        """
        if not requests:
            return set()

        config, trace = self._config, self._trace

        # Fast path: full lockstep — every requester fetches one address
        # (the overwhelmingly common case on the improved design).
        addresses = requests.values()
        first = next(iter(addresses))
        if config.im_broadcast and all(a == first for a in addresses):
            served = set(requests)
            trace.im_bank_accesses += 1
            trace.im_fetches_served += len(served)
            trace.note_lockstep(len(served))
            return served

        by_bank: dict[int, list[int]] = {}
        for core, address in requests.items():
            by_bank.setdefault(config.im_bank_of(address), []).append(core)

        granted: set[int] = set()
        largest_group = 0
        for bank, cores in by_bank.items():
            winner_core = _rotating_pick(cores, self._priority[bank],
                                         config.num_cores)
            winner_addr = requests[winner_core]
            if config.im_broadcast:
                served = [c for c in cores if requests[c] == winner_addr]
            else:
                served = [winner_core]   # one fetch per bank per cycle
            granted.update(served)
            trace.im_bank_accesses += 1
            trace.im_fetches_served += len(served)
            if len(served) < len(cores):
                trace.im_conflict_cycles += 1
            self._priority[bank] = (winner_core + 1) % config.num_cores
            if len(served) > largest_group:
                largest_group = len(served)

        trace.note_lockstep(largest_group)
        return granted


def _rotating_pick(cores: list[int], start: int, num_cores: int) -> int:
    """Pick the requesting core closest after ``start`` in rotation order."""
    best = cores[0]
    best_key = (best - start) % num_cores
    for core in cores:
        key = (core - start) % num_cores
        if key < best_key:
            best, best_key = core, key
    return best
