"""Activity counters collected during cycle-level simulation.

These counters are the interface between the architectural simulation and
the power model: every energy-bearing event in the platform (bank accesses,
crossbar transactions, synchronizer operations, clock ticks, core activity)
increments exactly one counter here, and the paper's performance metrics
(ops/cycle, IM access reduction, lockstep rate) are all derived from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ActivityTrace:
    """Aggregate event counts for one simulation run.

    Core-state accounting (per cycle, per core; the four categories
    partition ``num_cores * cycles``):

    :ivar core_active_cycles: cycles in which a core executed (or progressed
        a multi-cycle operation).
    :ivar core_stall_cycles: cycles lost to crossbar arbitration (the core
        is clock gated while waiting, per sec. III of the paper).
    :ivar core_sleep_cycles: cycles spent in sleep mode (checked-out at a
        barrier, or an explicit ``SLEEP``).
    :ivar core_halted_cycles: cycles after ``HALT``.

    Memory-system events:

    :ivar im_bank_accesses: IM bank reads; a broadcast fetch serving several
        cores counts once (this is the quantity the paper reports a ~60%
        reduction of).
    :ivar im_fetches_served: core-side instruction deliveries (I-Xbar
        transaction count; >= im_bank_accesses).
    :ivar dm_bank_reads / dm_bank_writes: DM bank-port operations, including
        the synchronizer's checkpoint read-modify-writes.
    :ivar dm_served: core-side data deliveries (D-Xbar transactions).

    Synchronizer events:

    :ivar sync_checkins / sync_checkouts: core-side SINC/SDEC executions.
    :ivar sync_rmw_ops: merged read-modify-write operations performed by the
        synchronizer (one per checkpoint per cycle-pair, regardless of how
        many requests were merged into it).
    :ivar sync_wakeups: wake-all events (counter reached zero).
    :ivar sync_wait_cycles: core-cycles spent asleep waiting at a check-out.
    """

    cycles: int = 0
    retired_ops: int = 0
    retired_per_core: list[int] = field(default_factory=list)

    core_active_cycles: int = 0
    core_stall_cycles: int = 0
    core_sleep_cycles: int = 0
    core_halted_cycles: int = 0

    im_bank_accesses: int = 0
    im_fetches_served: int = 0
    im_conflict_cycles: int = 0

    dm_bank_reads: int = 0
    dm_bank_writes: int = 0
    dm_served: int = 0
    dm_conflict_cycles: int = 0

    sync_checkins: int = 0
    sync_checkouts: int = 0
    sync_rmw_ops: int = 0
    sync_wakeups: int = 0
    sync_wait_cycles: int = 0

    lockstep_histogram: dict[int, int] = field(default_factory=dict)

    def note_lockstep(self, group_size: int) -> None:
        """Record the largest same-PC fetch group observed this cycle."""
        self.lockstep_histogram[group_size] = (
            self.lockstep_histogram.get(group_size, 0) + 1)

    def as_dict(self) -> dict:
        """Every raw counter as one plain dict.

        The canonical form for differential comparison (fast engine vs.
        reference stepping) and for serializing runs into ``BENCH_*.json``
        perf-regression files.
        """
        return {
            "cycles": self.cycles,
            "retired_ops": self.retired_ops,
            "retired_per_core": list(self.retired_per_core),
            "core_active_cycles": self.core_active_cycles,
            "core_stall_cycles": self.core_stall_cycles,
            "core_sleep_cycles": self.core_sleep_cycles,
            "core_halted_cycles": self.core_halted_cycles,
            "im_bank_accesses": self.im_bank_accesses,
            "im_fetches_served": self.im_fetches_served,
            "im_conflict_cycles": self.im_conflict_cycles,
            "dm_bank_reads": self.dm_bank_reads,
            "dm_bank_writes": self.dm_bank_writes,
            "dm_served": self.dm_served,
            "dm_conflict_cycles": self.dm_conflict_cycles,
            "sync_checkins": self.sync_checkins,
            "sync_checkouts": self.sync_checkouts,
            "sync_rmw_ops": self.sync_rmw_ops,
            "sync_wakeups": self.sync_wakeups,
            "sync_wait_cycles": self.sync_wait_cycles,
            "lockstep_histogram": {
                str(size): count
                for size, count in sorted(self.lockstep_histogram.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ActivityTrace":
        """Rebuild a trace from :meth:`as_dict` output (cache entries,
        ``BENCH_*.json`` files, worker transport)."""
        data = dict(payload)
        histogram = {int(size): count for size, count
                     in data.pop("lockstep_histogram", {}).items()}
        data["retired_per_core"] = list(data.get("retired_per_core", ()))
        trace = cls(**data)
        trace.lockstep_histogram = histogram
        return trace

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def dm_accesses(self) -> int:
        """Total DM bank accesses (reads + writes)."""
        return self.dm_bank_reads + self.dm_bank_writes

    @property
    def ops_per_cycle(self) -> float:
        """Platform throughput in retired instructions per clock cycle."""
        return self.retired_ops / self.cycles if self.cycles else 0.0

    @property
    def im_accesses_per_op(self) -> float:
        return self.im_bank_accesses / self.retired_ops if self.retired_ops else 0.0

    @property
    def lockstep_fraction(self) -> float:
        """Fraction of recorded cycles with at least half the cores fetching
        the same PC."""
        if not self.lockstep_histogram:
            return 0.0
        total = sum(self.lockstep_histogram.values())
        cores = max(self.lockstep_histogram)
        big = sum(count for size, count in self.lockstep_histogram.items()
                  if 2 * size >= cores)
        return big / total

    def rates_per_cycle(self) -> dict[str, float]:
        """Event rates per clock cycle — the power model's input vector."""
        c = self.cycles or 1
        return {
            "core_active": self.core_active_cycles / c,
            "core_stalled": self.core_stall_cycles / c,
            "core_sleeping": self.core_sleep_cycles / c,
            "im_access": self.im_bank_accesses / c,
            "im_served": self.im_fetches_served / c,
            "dm_access": self.dm_accesses / c,
            "dm_served": self.dm_served / c,
            "sync_rmw": self.sync_rmw_ops / c,
            "ops": self.retired_ops / c,
        }

    def summary(self) -> str:
        """Human-readable one-run summary."""
        lines = [
            f"cycles               {self.cycles}",
            f"retired ops          {self.retired_ops}"
            f"  ({self.ops_per_cycle:.2f} ops/cycle)",
            f"core cycles          active={self.core_active_cycles}"
            f" stalled={self.core_stall_cycles}"
            f" sleeping={self.core_sleep_cycles}"
            f" halted={self.core_halted_cycles}",
            f"IM bank accesses     {self.im_bank_accesses}"
            f"  (served {self.im_fetches_served} fetches)",
            f"DM accesses          {self.dm_bank_reads}r"
            f" + {self.dm_bank_writes}w (served {self.dm_served})",
            f"sync                 in={self.sync_checkins}"
            f" out={self.sync_checkouts} rmw={self.sync_rmw_ops}"
            f" wake={self.sync_wakeups} wait={self.sync_wait_cycles}",
            f"lockstep fraction    {self.lockstep_fraction:.2f}",
        ]
        return "\n".join(lines)
