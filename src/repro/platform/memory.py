"""Banked memory models for the shared instruction and data memories."""

from __future__ import annotations


class MemoryError_(RuntimeError):
    """An access outside the memory's address range."""


class BankedMemory:
    """A word-addressed memory divided into equally-sized contiguous banks.

    The memory itself is purely functional storage; per-cycle port
    arbitration is performed by the crossbars and the counts are recorded in
    the activity trace.  Addresses are word indices.
    """

    __slots__ = ("words", "bank_words", "num_banks")

    def __init__(self, num_banks: int, bank_words: int):
        self.num_banks = num_banks
        self.bank_words = bank_words
        self.words = [0] * (num_banks * bank_words)

    def __len__(self) -> int:
        return len(self.words)

    def bank_of(self, address: int) -> int:
        """Bank index covering ``address`` (raises on out-of-range)."""
        if not 0 <= address < len(self.words):
            raise MemoryError_(f"address {address} out of range")
        return address // self.bank_words

    def read(self, address: int) -> int:
        try:
            return self.words[address]
        except IndexError:
            raise MemoryError_(f"read from {address} out of range") from None

    def write(self, address: int, value: int) -> None:
        if not 0 <= address < len(self.words):
            raise MemoryError_(f"write to {address} out of range")
        self.words[address] = value & 0xFFFF

    def load(self, address: int, values) -> None:
        """Bulk-initialize a region (used by the program loader)."""
        end = address + len(values)
        if not 0 <= address <= end <= len(self.words):
            raise MemoryError_(
                f"load of {len(values)} words at {address} out of range")
        for offset, value in enumerate(values):
            self.words[address + offset] = value & 0xFFFF

    def dump(self, address: int, count: int) -> list[int]:
        """Read a region (used by tests and result extraction)."""
        if not 0 <= address <= address + count <= len(self.words):
            raise MemoryError_(
                f"dump of {count} words at {address} out of range")
        return self.words[address:address + count]
