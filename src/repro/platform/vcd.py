"""VCD (Value Change Dump) waveform export for platform simulations.

Attach a :class:`VcdProbe` to a machine and every cycle's core states are
written as a standard IEEE-1364 VCD file, viewable in GTKWave or any
waveform viewer — the debugging workflow an RTL engineer would expect
from the original platform.

Signals per core:

- ``coreN_pc``    (16-bit wire) — program counter;
- ``coreN_state`` (2-bit wire)  — 0 active, 1 stalled, 2 sleeping, 3 halted;

and globally:

- ``im_accesses`` (8-bit)  — IM bank reads this cycle;
- ``dm_accesses`` (8-bit)  — DM bank operations this cycle;
- ``sync_wake``   (1-bit)  — a barrier released this cycle;
- ``retired``     (8-bit)  — instructions retired this cycle.

Time is in nanoseconds at the nominal 12 ns clock period.
"""

from __future__ import annotations

import io

from ..cpu.state import CoreMode

#: VCD identifier characters (printable ASCII, excluding whitespace).
_ID_ALPHABET = [chr(c) for c in range(33, 127)]

STATE_ACTIVE = 0
STATE_STALLED = 1
STATE_SLEEPING = 2
STATE_HALTED = 3

#: nominal clock period in ns (sec. V-A of the paper)
CLOCK_PERIOD_NS = 12


def _identifier(index: int) -> str:
    """Short unique VCD identifier for signal ``index``."""
    base = len(_ID_ALPHABET)
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        out = _ID_ALPHABET[digit] + out
    return out


class VcdProbe:
    """Cycle probe that streams a VCD waveform.

    :param sink: a path (str) or a writable text file object.
    :param module: name of the VCD scope.
    """

    def __init__(self, sink, module: str = "platform"):
        if isinstance(sink, str):
            self._file = open(sink, "w", encoding="ascii")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._module = module
        self._signals: list[tuple[str, int, str]] = []  # (name, bits, id)
        self._previous: dict[str, int] = {}
        self._header_written = False
        self._last_counts = {"im": 0, "dm": 0, "ops": 0}
        # event-driven synchronizer view (fed by completion listeners,
        # not re-derived from counters every cycle)
        self._wake_pulse = False
        self._asleep: set[int] = set()

    # ------------------------------------------------------------------

    def _declare(self, name: str, bits: int) -> str:
        ident = _identifier(len(self._signals))
        self._signals.append((name, bits, ident))
        return ident

    def _write_header(self, machine) -> None:
        n = machine.config.num_cores
        self._core_pc = [self._declare(f"core{c}_pc", 16) for c in range(n)]
        self._core_state = [self._declare(f"core{c}_state", 2)
                            for c in range(n)]
        self._im = self._declare("im_accesses", 8)
        self._dm = self._declare("dm_accesses", 8)
        self._wake = self._declare("sync_wake", 1)
        self._retired = self._declare("retired", 8)

        out = self._file
        out.write("$comment repro ulp16 multi-core platform $end\n")
        out.write("$timescale 1 ns $end\n")
        out.write(f"$scope module {self._module} $end\n")
        for name, bits, ident in self._signals:
            out.write(f"$var wire {bits} {ident} {name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._header_written = True
        if machine.synchronizer is not None:
            machine.synchronizer.listeners.append(self._on_sync)

    def _on_sync(self, cycle: int, completion) -> None:
        """Synchronizer completion listener: tracks barrier sleepers and
        latches the wake pulse, replacing per-cycle counter diffing.

        Fires on the reference path even under the fast engine, so the
        VCD is bit-identical either way (the probe forces per-cycle
        stepping regardless; this keeps the *source* of the signals the
        event stream, same as the telemetry tracer)."""
        if completion.barrier_released:
            self._wake_pulse = True
            self._asleep -= set(completion.woken_cores)
        else:
            self._asleep |= set(completion.checkout_cores)

    def _state_code(self, machine, core_id: int, active: set[int]) -> int:
        if core_id in active:
            return STATE_ACTIVE
        mode = machine.cores[core_id].mode
        if mode is CoreMode.HALTED:
            return STATE_HALTED
        # barrier sleepers come from the completion events; the mode
        # check keeps explicit SLEEP instructions (no event) covered
        if core_id in self._asleep or mode is CoreMode.SLEEPING:
            return STATE_SLEEPING
        return STATE_STALLED

    def _emit(self, ident: str, value: int, bits: int,
              changes: list[str]) -> None:
        if self._previous.get(ident) == value:
            return
        self._previous[ident] = value
        if bits == 1:
            changes.append(f"{value}{ident}")
        else:
            changes.append(f"b{value:b} {ident}")

    # ------------------------------------------------------------------
    # Probe interface
    # ------------------------------------------------------------------

    def sample(self, machine, active: set[int]) -> None:
        if not self._header_written:
            self._write_header(machine)

        trace = machine.trace
        changes: list[str] = []
        for core_id, core in enumerate(machine.cores):
            self._emit(self._core_pc[core_id], core.pc & 0xFFFF, 16,
                       changes)
            self._emit(self._core_state[core_id],
                       self._state_code(machine, core_id, active), 2,
                       changes)

        counts = {"im": trace.im_bank_accesses, "dm": trace.dm_accesses,
                  "ops": trace.retired_ops}
        deltas = {k: counts[k] - self._last_counts[k] for k in counts}
        self._last_counts = counts
        self._emit(self._im, min(deltas["im"], 255), 8, changes)
        self._emit(self._dm, min(deltas["dm"], 255), 8, changes)
        self._emit(self._wake, 1 if self._wake_pulse else 0, 1, changes)
        self._wake_pulse = False
        self._emit(self._retired, min(deltas["ops"], 255), 8, changes)

        if changes:
            self._file.write(f"#{trace.cycles * CLOCK_PERIOD_NS}\n")
            self._file.write("\n".join(changes) + "\n")

    def finish(self, machine) -> None:
        self._file.write(
            f"#{(machine.trace.cycles + 1) * CLOCK_PERIOD_NS}\n")
        if self._owns_file:
            self._file.close()


def dump_vcd(machine, sink) -> None:
    """Convenience: attach a VCD probe and run the machine to completion."""
    probe = VcdProbe(sink)
    machine.attach_probe(probe)
    machine.run()


def parse_vcd_signals(text: str) -> dict[str, list[tuple[int, int]]]:
    """Minimal VCD reader (used by tests and notebooks): returns
    ``signal name -> [(time, value), ...]``."""
    names: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("$var"):
            parts = line.split()
            names[parts[3]] = parts[4]
    series: dict[str, list[tuple[int, int]]] = {
        name: [] for name in names.values()}
    time = 0
    body = text.split("$enddefinitions $end", 1)[1]
    for line in body.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b"):
            value_str, ident = line[1:].split()
            series[names[ident]].append((time, int(value_str, 2)))
        elif line[0] in "01" and line[1:] in names:
            series[names[line[1:]]].append((time, int(line[0])))
    return series
