"""Functional (instruction-set) simulator — the timing-free reference.

Classic EDA practice pairs a cycle-accurate model with an independent
instruction-set simulator (ISS) and co-simulates: for race-free programs
both must compute identical results and identical per-core dynamic
instruction counts, while only the cycle model says anything about time.
This catches corruption bugs in the crossbar/synchronizer plumbing that
golden-model checks at the output boundary might miss.

The ISS executes cores round-robin, one instruction at a time, with
immediate memory access and an idealized barrier:

- ``SINC`` updates the checkpoint word atomically;
- ``SDEC`` decrements it; the core blocks until the counter reaches
  zero, at which point all flagged cores unblock and the word clears.

Equivalence with the cycle machine is guaranteed only for *race-free*
programs (no conflicting same-address accesses ordered differently by
timing) — which SPMD kernels over private channel buffers are.
"""

from __future__ import annotations

from ..cpu.executor import (
    ExecutionError,
    checkpoint_address,
    effective_address,
    execute_plain,
    store_operands,
)
from ..cpu.state import CoreMode, CoreState
from ..isa.program import Program
from ..isa.spec import Opcode
from .synchronizer import pack_checkpoint, unpack_checkpoint


class FunctionalDeadlock(RuntimeError):
    """No core can make progress (unbalanced check-ins, stray SLEEP)."""


class FunctionalSimulator:
    """Timing-free SPMD execution of a program image.

    :param program: the image (same one the cycle machine loads).
    :param num_cores: SPMD width.
    :param dm_words: data-memory size in words.
    """

    def __init__(self, program: Program, num_cores: int = 8,
                 dm_words: int = 32768):
        self.program = program
        self.im = list(program.instructions)
        self.dm = [0] * dm_words
        for block in program.data:
            for offset, value in enumerate(block.values):
                self.dm[block.address + offset] = value & 0xFFFF
        self.cores = [CoreState(cid, num_cores) for cid in range(num_cores)]
        for core in self.cores:
            core.pc = program.entry
        self.instruction_counts = [0] * num_cores
        #: checkpoint address -> set of cores blocked at its check-out
        self._blocked: dict[int, set[int]] = {}

    # ------------------------------------------------------------------

    def _step_core(self, cid: int) -> bool:
        """Execute one instruction on core ``cid``; False if it idles."""
        core = self.cores[cid]
        if core.mode is not CoreMode.RUNNING:
            return False
        if core.pc >= len(self.im):
            raise ExecutionError(
                f"core {cid} ran past the program end (pc={core.pc})")
        ins = self.im[core.pc]
        op = ins.op
        self.instruction_counts[cid] += 1

        if op is Opcode.LD:
            value = self.dm[effective_address(core, ins)]
            core.regs[ins.rd] = value
            core.pc += 1
        elif op is Opcode.ST:
            address, value = store_operands(core, ins)
            self.dm[address] = value & 0xFFFF
            core.pc += 1
        elif op is Opcode.SINC:
            address = checkpoint_address(core, ins)
            flags, count = unpack_checkpoint(self.dm[address])
            self.dm[address] = pack_checkpoint(flags | (1 << cid),
                                               count + 1)
            core.pc += 1
        elif op is Opcode.SDEC:
            address = checkpoint_address(core, ins)
            flags, count = unpack_checkpoint(self.dm[address])
            count -= 1
            if count < 0:
                raise ExecutionError(
                    f"checkpoint @{address}: check-out without check-in")
            core.pc += 1
            if count == 0:
                self.dm[address] = 0
                for waiter in self._blocked.pop(address, set()):
                    self.cores[waiter].mode = CoreMode.RUNNING
            else:
                self.dm[address] = pack_checkpoint(flags, count)
                core.mode = CoreMode.SLEEPING
                self._blocked.setdefault(address, set()).add(cid)
        else:
            execute_plain(core, ins)
        return True

    # ------------------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        return all(core.mode is CoreMode.HALTED for core in self.cores)

    def run(self, max_steps: int = 50_000_000) -> list[int]:
        """Run to completion; returns per-core instruction counts."""
        steps = 0
        while not self.all_halted:
            progressed = False
            for cid in range(len(self.cores)):
                if self._step_core(cid):
                    progressed = True
                    steps += 1
                    if steps > max_steps:
                        raise ExecutionError(
                            f"exceeded {max_steps} instructions")
            if not progressed:
                sleepers = [(cid, core.pc)
                            for cid, core in enumerate(self.cores)
                            if core.mode is CoreMode.SLEEPING]
                raise FunctionalDeadlock(
                    f"no runnable core; sleeping (id, pc): {sleepers}")
        return list(self.instruction_counts)

    def dump(self, address: int, count: int) -> list[int]:
        """Read a DM region (mirrors :meth:`BankedMemory.dump`)."""
        return self.dm[address:address + count]
