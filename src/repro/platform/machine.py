"""Cycle-level model of the 8-core ULP platform.

One :meth:`Machine.step` call simulates one clock cycle of the whole
platform, in the order the hardware resolves it:

1. apply wakeups latched last cycle; deliver interrupts;
2. synchronizer write phase — pending checkpoint read-modify-writes
   complete, checked-out cores go to sleep or the barrier releases;
3. instruction fetch arbitration through the I-Xbar (with broadcast);
4. execution of fetched instructions — plain instructions retire
   immediately, loads/stores and ``SINC``/``SDEC`` become requests;
5. synchronizer read phase — new merged check-in/check-out RMWs start and
   lock their checkpoint words;
6. D-Xbar arbitration — broadcast reads, serialized conflicts, and (with
   the enhanced policy) synchronous-stall conflict groups;
7. per-core activity accounting for the power model.

Cores are clock gated while they wait for arbitration (counted as stalled)
and consume only sleep power while checked out at a barrier.

``step()`` is the *reference* engine; :meth:`Machine.run` drives it
through the :class:`~repro.platform.engine.FastEngine`, which collapses
lockstep stretches and idle sleep periods into batched updates whenever
that is provably cycle-exact (and always when probes are attached falls
back to per-cycle stepping).  Construct with ``fast_engine=False`` to
force pure ``step()`` stepping.
"""

from __future__ import annotations

from ..cpu.executor import (
    ExecutionError,
    checkpoint_address,
    effective_address,
    execute_plain,
    store_operands,
    take_interrupt,
)
from ..cpu.predecode import KIND_MEM, KIND_SYNC
from ..cpu.state import CoreMode, CoreState
from ..isa.program import Program
from ..isa.spec import Opcode
from .config import PlatformConfig, WITH_SYNCHRONIZER
from .dxbar import DataCrossbar, DmRequest
from .engine import DeadlockError, FastEngine, INFINITY, SimulationLimitError
from .ixbar import InstructionCrossbar
from .memory import BankedMemory
from .synchronizer import Synchronizer, SyncRequest
from .trace import ActivityTrace

__all__ = [
    "DeadlockError",
    "Machine",
    "SimulationLimitError",
]

#: shared immutable stand-in for "no banks busy this cycle" — avoids
#: allocating a set on every cycle without synchronizer traffic.
_NO_BANKS: frozenset[int] = frozenset()


def _timer_next_fire(period: int, offset: int, after: int) -> int:
    """First cycle > ``after`` at which a periodic timer fires.

    Matches the reference predicate ``cycle >= offset and
    (cycle - offset) % period == 0`` (cycle numbering starts at 1).
    """
    if offset > after:
        return offset
    return offset + ((after - offset) // period + 1) * period


class Machine:
    """The multi-core platform simulator.

    :param program: the SPMD image every core executes.
    :param config: structural/policy parameters
        (default: the paper's improved 8-core design).
    :param fast_engine: allow :meth:`run`/:meth:`run_cycles` to take the
        cycle-exact fast paths (lockstep bursts, sleep fast-forward).
        Disable to force the reference ``step()`` for every cycle.
    """

    def __init__(self, program: Program,
                 config: PlatformConfig = WITH_SYNCHRONIZER,
                 *, fast_engine: bool = True):
        self.config = config
        self.trace = ActivityTrace()
        self.trace.retired_per_core = [0] * config.num_cores

        if len(program.instructions) > config.im_words:
            raise ValueError("program does not fit in instruction memory")
        self.im = list(program.instructions)
        self.dm = BankedMemory(config.dm_banks, config.dm_bank_words)
        for block in program.data:
            self.dm.load(block.address, block.values)
        self.program = program
        #: predecoded dispatch records, index == IM address (shared with
        #: other machines running the same Program instance)
        self._decoded = program.predecoded()
        #: fused-superblock table (:class:`repro.cpu.blocks.BlockTable`),
        #: bound lazily on first burst so reference-only machines never
        #: pay for it; shared across machines via the image digest.
        self._blocks = None

        self.cores = [CoreState(cid, config.num_cores)
                      for cid in range(config.num_cores)]
        for core in self.cores:
            core.pc = program.entry

        self.ixbar = InstructionCrossbar(config, self.trace)
        self.dxbar = DataCrossbar(config, self.trace, self.dm)
        self.synchronizer = (
            Synchronizer(config, self.trace, self.dm, self.dxbar)
            if config.has_synchronizer else None)

        self._quiet = False
        self._probes: list = []
        self._observers: list = []
        self._outstanding: list[tuple | None] = [None] * config.num_cores
        self._outstanding_count = 0
        self._barrier_sleeper = [False] * config.num_cores
        self._wake_next: set[int] = set()
        self._pending_irq = [False] * config.num_cores
        self._pending_irq_count = 0
        self._irq_schedule: dict[int, list[int]] = {}
        self._timers: list[tuple[int, int, tuple[int, ...]]] = []
        #: per-timer next-fire cycle, parallel to ``_timers``
        self._timer_next: list[int] = []
        #: min of ``_timer_next`` (INFINITY when no timers) — the step
        #: loop compares one number instead of re-moduloing every timer.
        self._next_timer_fire: float = INFINITY

        self.fast_engine = fast_engine
        self._engine = FastEngine(self)

    @property
    def engine_stats(self):
        """Fast-engine engagement counters (:class:`EngineStats`)."""
        return self._engine.stats

    def _block_table(self):
        """Bind (and memoize) the fused-superblock table for this image.

        Keyed on the image digest (:func:`repro.cpu.blocks.table_for`)
        plus the memory geometry when the image carries address-shape
        facts, so every machine running the same built image on the
        same geometry — across sweep requests and repeated benchmark
        constructions — shares one compiled table.
        """
        if self._blocks is None:
            from ..cpu.blocks import table_for

            self._blocks = table_for(self.program, self.config)
        return self._blocks

    @classmethod
    def from_assembly(cls, source: str,
                      config: PlatformConfig = WITH_SYNCHRONIZER,
                      **kwargs) -> "Machine":
        """Assemble ``source`` and construct a machine running it."""
        from ..isa.assembler import assemble

        return cls(assemble(source), config, **kwargs)

    # ------------------------------------------------------------------
    # External stimulus
    # ------------------------------------------------------------------

    def schedule_interrupt(self, cycle: int, core: int) -> None:
        """Latch an interrupt request for ``core`` at absolute ``cycle``."""
        self._irq_schedule.setdefault(cycle, []).append(core)

    def add_timer(self, period: int, cores=None, *, offset: int = 0) -> None:
        """Add a periodic interrupt source (e.g. an ADC sample timer).

        Raises an IRQ on every listed core each ``period`` cycles,
        starting at ``offset`` — the stimulus for streaming, duty-cycled
        biosignal processing.
        """
        if period < 1:
            raise ValueError("timer period must be positive")
        targets = tuple(range(self.config.num_cores)) if cores is None \
            else tuple(cores)
        self._timers.append((period, offset, targets))
        fire = _timer_next_fire(period, offset, self.trace.cycles)
        self._timer_next.append(fire)
        if fire < self._next_timer_fire:
            self._next_timer_fire = fire

    def attach_probe(self, probe) -> None:
        """Attach a cycle probe: ``probe.sample(machine, active_cores)`` is
        called at the end of every simulated cycle (costs nothing when no
        probe is attached).  Probes may implement ``finish(machine)``,
        invoked by :meth:`run` on completion.  While any probe is
        attached the fast engine stands down, so every cycle is stepped
        (and sampled) individually."""
        self._probes.append(probe)

    def attach_observer(self, observer) -> None:
        """Attach an *event* observer: unlike a probe it has no per-cycle
        ``sample`` hook, so the fast engine stays engaged.  Observers
        subscribe to event streams themselves (synchronizer completion
        listeners, D-Xbar conflict listeners); the machine only calls
        their optional ``finish(machine)`` when a run completes — e.g.
        :class:`repro.telemetry.BarrierTracer`."""
        self._observers.append(observer)

    def is_barrier_sleeper(self, core_id: int) -> bool:
        """True while ``core_id`` is asleep checked out at a barrier (as
        opposed to an explicit ``SLEEP``) — the distinction probes need
        to attribute wait cycles to a pending checkpoint."""
        return self._barrier_sleeper[core_id]

    # ------------------------------------------------------------------
    # Cycle engine (reference path)
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Simulate one clock cycle."""
        trace = self.trace
        cores = self.cores
        trace.cycles += 1
        cycle = trace.cycles
        active: set[int] = set()

        # -- 1. latched wakeups and interrupts ---------------------------
        if self._wake_next:
            for cid in self._wake_next:
                core = cores[cid]
                if core.mode is CoreMode.SLEEPING:
                    core.mode = CoreMode.RUNNING
                self._barrier_sleeper[cid] = False
            self._wake_next.clear()

        due = self._irq_schedule.pop(cycle, None)
        if due:
            for cid in due:
                if not self._pending_irq[cid]:
                    self._pending_irq[cid] = True
                    self._pending_irq_count += 1
        if cycle >= self._next_timer_fire:
            timer_next = self._timer_next
            for index, (period, _offset, targets) in enumerate(self._timers):
                if timer_next[index] == cycle:
                    for cid in targets:
                        if not self._pending_irq[cid]:
                            self._pending_irq[cid] = True
                            self._pending_irq_count += 1
                    timer_next[index] = cycle + period
            self._next_timer_fire = min(timer_next)
        if self._pending_irq_count:
            for cid, core in enumerate(cores):
                # A core checked out at a barrier is clock gated by the
                # synchronizer, one level below interrupt-wakeable sleep:
                # waking it early would let it run past an unreleased
                # checkpoint.  Its IRQ stays pending until the wakeup.
                if (self._pending_irq[cid] and core.interrupts_enabled
                        and core.mode is not CoreMode.HALTED
                        and not self._barrier_sleeper[cid]
                        and self._outstanding[cid] is None):
                    take_interrupt(core)
                    self._pending_irq[cid] = False
                    self._pending_irq_count -= 1

        # -- 2. synchronizer write phase ---------------------------------
        busy_banks: set[int] = _NO_BANKS
        synchronizer = self.synchronizer
        if synchronizer is not None and synchronizer.busy:
            completions, busy_banks = synchronizer.write_phase()
            for comp in completions:
                for cid in comp.checkin_cores:
                    self._retire_sync(cid, active)
                for cid in comp.checkout_cores:
                    self._retire_sync(cid, active)
                    if not comp.barrier_released:
                        cores[cid].mode = CoreMode.SLEEPING
                        self._barrier_sleeper[cid] = True
                for cid in comp.woken_cores:
                    if cores[cid].mode is CoreMode.SLEEPING:
                        self._wake_next.add(cid)

        # -- 3. fetch arbitration ----------------------------------------
        fetchers = {
            cid: cores[cid].pc
            for cid in range(self.config.num_cores)
            if (cores[cid].mode is CoreMode.RUNNING
                and self._outstanding[cid] is None
                and cid not in active)
        }
        granted = self.ixbar.arbitrate(fetchers) if fetchers else set()

        # -- 4. execute / classify fetched instructions -------------------
        decoded = self._decoded
        for cid in granted:
            core = cores[cid]
            pc = core.pc
            if pc >= len(self.im):
                raise ExecutionError(
                    f"core {cid} fetched past the program end (pc={pc})")
            ins = self.im[pc]
            active.add(cid)
            kind = decoded[pc][0]
            if kind == KIND_MEM:
                self._outstanding[cid] = ("mem", ins)
                self._outstanding_count += 1
            elif kind == KIND_SYNC:
                if self.synchronizer is None:
                    raise ExecutionError(
                        f"core {cid} executed {ins.op.name} but the platform "
                        "has no hardware synchronizer")
                self._outstanding[cid] = ("sync", ins)
                self._outstanding_count += 1
            else:
                execute_plain(core, ins)
                self._retire(cid)

        # -- collect outstanding memory / sync requests -------------------
        if self._outstanding_count:
            dm_requests: list[DmRequest] = []
            sync_requests: list[SyncRequest] = []
            for cid, out in enumerate(self._outstanding):
                if out is None:
                    continue
                kind, ins = out
                core = cores[cid]
                if kind == "mem":
                    if ins.op is Opcode.ST:
                        addr, value = store_operands(core, ins)
                        dm_requests.append(
                            DmRequest(cid, addr, True, value, core.pc))
                    else:
                        dm_requests.append(
                            DmRequest(cid, effective_address(core, ins),
                                      False, 0, core.pc))
                elif kind == "sync":
                    sync_requests.append(
                        SyncRequest(cid, checkpoint_address(core, ins),
                                    ins.op is Opcode.SDEC))
        else:
            dm_requests = []
            sync_requests = []

        # -- 5. synchronizer read phase ------------------------------------
        if sync_requests:
            accepted, busy_banks = self.synchronizer.read_phase(
                sync_requests, busy_banks)
            for cid in accepted:
                _, ins = self._outstanding[cid]
                self._outstanding[cid] = ("sync_wait", ins)
                active.add(cid)

        # -- 6. data crossbar ------------------------------------------------
        if dm_requests:
            result = self.dxbar.arbitrate(dm_requests, busy_banks)
            for cid, value in result.completions.items():
                kind, ins = self._outstanding[cid]
                if value is not None:
                    cores[cid].regs[ins.rd] = value
                self._outstanding[cid] = ("mem_held", ins)
                active.add(cid)
            for cid in result.released:
                kind, ins = self._outstanding[cid]
                cores[cid].pc += 1
                self._outstanding[cid] = None
                self._outstanding_count -= 1
                self._retire(cid)
                active.add(cid)

        # -- 7. accounting ------------------------------------------------
        for cid, core in enumerate(cores):
            if cid in active:
                trace.core_active_cycles += 1
            elif core.mode is CoreMode.HALTED:
                trace.core_halted_cycles += 1
            elif core.mode is CoreMode.SLEEPING or cid in self._wake_next:
                trace.core_sleep_cycles += 1
                if self._barrier_sleeper[cid]:
                    trace.sync_wait_cycles += 1
            else:
                trace.core_stall_cycles += 1
        self._quiet = not active
        if self._probes:
            for probe in self._probes:
                probe.sample(self, active)

    # ------------------------------------------------------------------

    def _retire(self, cid: int) -> None:
        self.trace.retired_ops += 1
        self.trace.retired_per_core[cid] += 1

    def _retire_sync(self, cid: int, active: set[int]) -> None:
        """Finish a SINC/SDEC: advance the PC and count the op."""
        self.cores[cid].pc += 1
        self._outstanding[cid] = None
        self._outstanding_count -= 1
        self._retire(cid)
        active.add(cid)

    def _finish_probes(self) -> None:
        """Invoke every probe's and observer's optional ``finish`` hook."""
        for probe in self._probes:
            finish = getattr(probe, "finish", None)
            if finish is not None:
                finish(self)
        for observer in self._observers:
            finish = getattr(observer, "finish", None)
            if finish is not None:
                finish(self)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        return all(core.mode is CoreMode.HALTED for core in self.cores)

    def _check_deadlock(self) -> None:
        if self.all_halted:
            return
        if any(core.mode is CoreMode.RUNNING for core in self.cores):
            return
        if self._wake_next or (self.synchronizer and self.synchronizer.busy):
            return
        if self._irq_schedule or self._timers:
            return
        if any(pending and not self._barrier_sleeper[cid]
               and self.cores[cid].mode is not CoreMode.HALTED
               for cid, pending in enumerate(self._pending_irq)):
            return
        sleepers = [
            (cid, core.pc) for cid, core in enumerate(self.cores)
            if core.mode is CoreMode.SLEEPING
        ]
        raise DeadlockError(
            "no runnable core and no pending wakeup; sleeping cores "
            f"(id, pc): {sleepers}")

    def run(self, max_cycles: int | None = None) -> ActivityTrace:
        """Run until every core halts; returns the activity trace."""
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        if self.all_halted:
            return self.trace
        self._engine.run(limit)
        return self.trace

    def run_cycles(self, count: int) -> ActivityTrace:
        """Run for at most ``count`` more cycles (stops when all halt).

        Shares the engine (and its fast paths) with :meth:`run`: like
        ``run()`` it detects completion on the first quiet cycle after
        the last core halts and then invokes probe ``finish()`` hooks,
        instead of rescanning every core each cycle.
        """
        if count <= 0 or self.all_halted:
            return self.trace
        self._engine.run(self.trace.cycles + count, raise_on_limit=False)
        return self.trace
