"""Data crossbar with broadcast, locks and the synchronous-stall policy.

Per cycle, each DM bank serves one *address*.  Multiple cores reading the
same address are all served by one bank read (data broadcast); a write is
exclusive.  Conflicting requests (same bank, different address, or competing
writes) are serialized one per cycle while losing cores are clock gated.

Two mechanisms from the paper are layered on top:

- **Locks** (sec. IV-B): the synchronizer locks a checkpoint word during its
  read-modify-write; ordinary accesses to a locked address are refused.

- **Synchronous-stall policy** (sec. IV, first enhancement): when a bank
  conflict occurs among cores whose program counters are equal — i.e. the
  cores are executing the same instruction in lockstep — the cores that have
  already been served are stalled until *all* of them have been served, so
  the conflict does not break lockstep.  Without the policy (baseline
  design), served cores continue immediately and the cores drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import PlatformConfig
from .trace import ActivityTrace


@dataclass(frozen=True, slots=True)
class DmRequest:
    """One core-side data-memory request for the current cycle."""

    core: int
    address: int
    is_write: bool
    value: int = 0
    pc: int = 0


@dataclass(frozen=True, slots=True)
class DmResult:
    """Outcome of one cycle of D-Xbar arbitration.

    :ivar completions: ``core -> read value`` (``None`` for completed
        writes); register writeback may happen now, PC advance may not.
    :ivar released: cores whose instruction is architecturally complete this
        cycle (advance PC).  Always a subset of current or previous
        completions.
    :ivar denied: cores that must retry next cycle.
    """

    completions: dict[int, int | None]
    released: set[int]
    denied: set[int]


class _ConflictGroup:
    """Book-keeping for one synchronous bank conflict (one per bank)."""

    __slots__ = ("members", "done")

    def __init__(self, members: set[int]):
        self.members = set(members)
        self.done: set[int] = set()

    @property
    def complete(self) -> bool:
        return self.done == self.members


class DataCrossbar:
    """Per-cycle data-memory arbitration."""

    def __init__(self, config: PlatformConfig, trace: ActivityTrace,
                 memory):
        self._config = config
        self._trace = trace
        self._memory = memory
        self._priority = [0] * config.dm_banks
        self._groups: dict[int, _ConflictGroup] = {}
        self.locked_addresses: set[int] = set()
        #: observers called as ``listener(cycle, denied_requests)`` on every
        #: cycle that refuses at least one request (``denied_requests`` is a
        #: tuple of the losing :class:`DmRequest`).  The fast engine serves
        #: only provably conflict-free patterns inline, so every conflict
        #: arbitrates here and listeners see them all at no cost to bursts.
        self.conflict_listeners: list = []

    @property
    def held_cores(self) -> set[int]:
        """Cores served but still stalled inside a conflict group."""
        held = set()
        for group in self._groups.values():
            held |= group.done
        return held

    def arbitrate(self, requests: list[DmRequest],
                  busy_banks: set[int]) -> DmResult:
        """Arbitrate one cycle of data requests.

        :param requests: outstanding requests, one per core at most.
        :param busy_banks: banks whose port is used by the synchronizer
            this cycle (its accesses have priority).
        """
        if not requests:
            # Early-out on traffic-free cycles: no per-bank grouping, no
            # conflict bookkeeping, no counter updates.
            return DmResult({}, set(), set())
        config, trace = self._config, self._trace
        completions: dict[int, int | None] = {}
        released: set[int] = set()
        denied: set[int] = set()

        by_bank: dict[int, list[DmRequest]] = {}
        for req in requests:
            by_bank.setdefault(config.dm_bank_of(req.address), []).append(req)

        for bank, reqs in by_bank.items():
            if bank in busy_banks:
                denied.update(r.core for r in reqs)
                continue

            usable = []
            for req in reqs:
                if req.address in self.locked_addresses:
                    denied.add(req.core)
                else:
                    usable.append(req)
            if not usable:
                continue

            group = self._groups.get(bank)
            if group is not None:
                # Only group members may use the bank until the group drains.
                member_reqs = [r for r in usable if r.core in group.members]
                denied.update(r.core for r in usable
                              if r.core not in group.members)
                usable = member_reqs
                if not usable:
                    continue

            served = self._serve_bank(bank, usable)
            losers = [r for r in usable if r.core not in served]
            denied.update(r.core for r in losers)

            if group is None and losers and config.has_dxbar_sync_stall:
                pcs = {r.pc for r in usable}
                if len(pcs) == 1:
                    # Synchronous conflict: hold served cores until the
                    # whole group has been served (paper sec. IV).
                    group = _ConflictGroup({r.core for r in usable})
                    self._groups[bank] = group

            for req in usable:
                if req.core not in served:
                    continue
                completions[req.core] = served[req.core]
                if group is not None:
                    group.done.add(req.core)
                else:
                    released.add(req.core)

            if group is not None and group.complete:
                released.update(group.members)
                del self._groups[bank]

        if denied:
            trace.dm_conflict_cycles += 1
            if self.conflict_listeners:
                losers = tuple(r for r in requests if r.core in denied)
                for listener in self.conflict_listeners:
                    listener(trace.cycles, losers)
        return DmResult(completions, released, denied)

    def _serve_bank(self, bank: int, reqs: list[DmRequest]) -> dict[int, int | None]:
        """Serve one bank for one cycle; returns core -> read value/None."""
        config, trace, memory = self._config, self._trace, self._memory
        winner_core = min(
            (r.core for r in reqs),
            key=lambda c: (c - self._priority[bank]) % config.num_cores)
        self._priority[bank] = (winner_core + 1) % config.num_cores
        winner = next(r for r in reqs if r.core == winner_core)

        served: dict[int, int | None] = {}
        if winner.is_write:
            memory.write(winner.address, winner.value)
            trace.dm_bank_writes += 1
            trace.dm_served += 1
            served[winner.core] = None
        else:
            value = memory.read(winner.address)
            trace.dm_bank_reads += 1
            if config.dm_broadcast:
                # Broadcast: every read of one address is served at once.
                for req in reqs:
                    if not req.is_write and req.address == winner.address:
                        served[req.core] = value
                        trace.dm_served += 1
            else:
                served[winner.core] = value
                trace.dm_served += 1
        return served

    # ------------------------------------------------------------------
    # Lock management (driven by the synchronizer)
    # ------------------------------------------------------------------

    def lock(self, address: int) -> None:
        self.locked_addresses.add(address)

    def unlock(self, address: int) -> None:
        self.locked_addresses.discard(address)
