"""Cycle-level model of the ULP multi-core platform (paper sec. III/IV).

Compose a :class:`~repro.platform.machine.Machine` from a
:class:`~repro.isa.program.Program` and a
:class:`~repro.platform.config.PlatformConfig`; run it; read the
:class:`~repro.platform.trace.ActivityTrace`.
"""

from .config import (
    PlatformConfig,
    SyncPolicy,
    WITH_SYNCHRONIZER,
    WITHOUT_SYNCHRONIZER,
)
from .dxbar import DataCrossbar, DmRequest, DmResult
from .engine import EngineStats, FastEngine
from .functional import FunctionalDeadlock, FunctionalSimulator
from .ixbar import InstructionCrossbar
from .machine import DeadlockError, Machine, SimulationLimitError
from .memory import BankedMemory
from .synchronizer import (
    SynchronizationError,
    Synchronizer,
    SyncRequest,
    pack_checkpoint,
    unpack_checkpoint,
)
from .trace import ActivityTrace

__all__ = [
    "ActivityTrace",
    "BankedMemory",
    "DataCrossbar",
    "DeadlockError",
    "DmRequest",
    "DmResult",
    "EngineStats",
    "FastEngine",
    "FunctionalDeadlock",
    "FunctionalSimulator",
    "InstructionCrossbar",
    "Machine",
    "PlatformConfig",
    "SimulationLimitError",
    "SynchronizationError",
    "Synchronizer",
    "SyncPolicy",
    "SyncRequest",
    "WITH_SYNCHRONIZER",
    "WITHOUT_SYNCHRONIZER",
    "pack_checkpoint",
    "unpack_checkpoint",
]
