"""The hardware synchronizer — the paper's central contribution (sec. IV-A).

The synchronizer coordinates the ``SINC`` (check-in) and ``SDEC``
(check-out) instructions:

- Checkpoint state lives in ordinary data memory: one 16-bit word per
  synchronization point, holding the 1-bit core identity flags (bits 7..0)
  and the count of cores currently inside the section (bits 11..8).
- Concurrent requests for the same checkpoint are **merged**: however many
  cores check in or out together, the synchronizer performs a single
  two-cycle read-modify-write (read in the request cycle, write in the
  next).
- The checkpoint address is **locked** during the read-modify-write; late
  requests and ordinary accesses wait (the ISE's lock output signal).
- A core that checks out goes to sleep.  When the counter reaches zero the
  synchronizer **wakes every flagged core** in the same cycle and clears
  the word, so all participants resume in lockstep at the instruction after
  their ``SDEC``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import PlatformConfig
from .trace import ActivityTrace

FLAGS_MASK = 0x00FF
COUNT_SHIFT = 8
COUNT_MASK = 0x0F


def pack_checkpoint(flags: int, count: int) -> int:
    """Pack identity flags and core counter into a checkpoint word."""
    return (flags & FLAGS_MASK) | ((count & COUNT_MASK) << COUNT_SHIFT)


def unpack_checkpoint(word: int) -> tuple[int, int]:
    """Split a checkpoint word into (identity flags, core counter)."""
    return word & FLAGS_MASK, (word >> COUNT_SHIFT) & COUNT_MASK


class SynchronizationError(RuntimeError):
    """A program violated the check-in/check-out protocol."""


@dataclass(slots=True)
class CheckpointStats:
    """Per-checkpoint usage statistics (for contention analysis)."""

    rmws: int = 0
    checkins: int = 0
    checkouts: int = 0
    wakeups: int = 0
    max_counter: int = 0
    blocked_requests: int = 0     # requests refused by lock/port conflicts


@dataclass(frozen=True, slots=True)
class SyncRequest:
    """One core-side SINC/SDEC request."""

    core: int
    address: int
    is_checkout: bool


@dataclass(slots=True)
class _Rmw:
    """A merged read-modify-write in flight (read done, write pending)."""

    address: int
    checkin_mask: int
    checkout_cores: list[int]
    checkin_cores: list[int]
    value_read: int


@dataclass(frozen=True, slots=True)
class SyncCompletion:
    """Effects of the write phase of one merged RMW."""

    address: int
    checkin_cores: tuple[int, ...]
    checkout_cores: tuple[int, ...]
    woken_cores: tuple[int, ...]     # flagged sleepers to wake (incl. none)
    barrier_released: bool           # counter reached zero
    #: checkpoint counter value after the write — the barrier occupancy
    #: observers (telemetry, crosscheck) would otherwise have to rederive
    count_after: int = 0


class Synchronizer:
    """Cycle-level model of the hardware synchronizer block."""

    def __init__(self, config: PlatformConfig, trace: ActivityTrace,
                 memory, dxbar):
        self._config = config
        self._trace = trace
        self._memory = memory
        self._dxbar = dxbar
        self._pending_writes: list[_Rmw] = []
        #: checkpoint DM address -> usage statistics
        self.stats: dict[int, CheckpointStats] = {}
        #: observers called as ``listener(cycle, completion)`` for every
        #: completed RMW — e.g. :class:`repro.sync.verifier.SyncCrosscheck`.
        #: The synchronizer performs RMWs on the slow path even under the
        #: fast engine, so listeners see every barrier event at no cost to
        #: lockstep bursts.
        self.listeners: list = []

    @property
    def busy(self) -> bool:
        """True while any read-modify-write is in flight."""
        return bool(self._pending_writes)

    # ------------------------------------------------------------------
    # Cycle phases (driven by the machine)
    # ------------------------------------------------------------------

    def write_phase(self) -> tuple[list[SyncCompletion], set[int]]:
        """Complete the write cycle of RMWs started last cycle.

        :returns: the completions and the set of DM banks whose port the
            synchronizer occupies this cycle.
        """
        completions: list[SyncCompletion] = []
        busy_banks: set[int] = set()
        for rmw in self._pending_writes:
            completion = self._complete(rmw)
            completions.append(completion)
            busy_banks.add(self._config.dm_bank_of(rmw.address))
            for listener in self.listeners:
                listener(self._trace.cycles, completion)
        self._pending_writes = []
        return completions, busy_banks

    def read_phase(self, requests: list[SyncRequest],
                   busy_banks: set[int]) -> tuple[set[int], set[int]]:
        """Start RMWs for this cycle's merged requests.

        Requests to a locked checkpoint or to a bank whose port is already
        in use this cycle are refused (the core retries next cycle).

        :returns: ``(accepted core ids, banks now busy)``.
        """
        by_addr: dict[int, list[SyncRequest]] = {}
        for req in requests:
            by_addr.setdefault(req.address, []).append(req)

        accepted: set[int] = set()
        used_banks = set(busy_banks)
        for address, group in by_addr.items():
            bank = self._config.dm_bank_of(address)
            stats = self.stats.get(address)
            if stats is None:
                stats = self.stats[address] = CheckpointStats()
            if address in self._dxbar.locked_addresses or bank in used_banks:
                stats.blocked_requests += len(group)
                continue
            value = self._memory.read(address)
            self._trace.dm_bank_reads += 1
            self._trace.sync_rmw_ops += 1
            stats.rmws += 1
            self._dxbar.lock(address)
            used_banks.add(bank)
            mask = 0
            checkouts: list[int] = []
            checkins: list[int] = []
            for req in group:
                if req.is_checkout:
                    checkouts.append(req.core)
                else:
                    checkins.append(req.core)
                    mask |= 1 << req.core
                accepted.add(req.core)
            self._pending_writes.append(
                _Rmw(address, mask, checkouts, checkins, value))
        return accepted, used_banks

    # ------------------------------------------------------------------

    def _complete(self, rmw: _Rmw) -> SyncCompletion:
        """Apply one merged RMW's write and compute its wake effects."""
        flags, count = unpack_checkpoint(rmw.value_read)
        flags |= rmw.checkin_mask
        count += len(rmw.checkin_cores) - len(rmw.checkout_cores)
        if count < 0:
            raise SynchronizationError(
                f"checkpoint @{rmw.address}: more check-outs than check-ins "
                f"(cores {rmw.checkout_cores})")
        if count > self._config.num_cores:
            raise SynchronizationError(
                f"checkpoint @{rmw.address}: counter {count} exceeds the "
                "core count; a core checked in twice")

        trace = self._trace
        trace.dm_bank_writes += 1
        trace.sync_checkins += len(rmw.checkin_cores)
        trace.sync_checkouts += len(rmw.checkout_cores)
        stats = self.stats[rmw.address]
        stats.checkins += len(rmw.checkin_cores)
        stats.checkouts += len(rmw.checkout_cores)
        if count > stats.max_counter:
            stats.max_counter = count

        woken: tuple[int, ...] = ()
        released = False
        if count == 0 and rmw.checkout_cores:
            # All expected cores reached the check-out point: wake every
            # flagged core and reinitialize the word (paper sec. IV-A).
            woken = tuple(core for core in range(self._config.num_cores)
                          if flags & (1 << core))
            self._memory.write(rmw.address, 0)
            trace.sync_wakeups += 1
            stats.wakeups += 1
            released = True
        else:
            self._memory.write(rmw.address, pack_checkpoint(flags, count))

        self._dxbar.unlock(rmw.address)
        return SyncCompletion(
            rmw.address,
            tuple(rmw.checkin_cores),
            tuple(rmw.checkout_cores),
            woken,
            released,
            count,
        )

    # ------------------------------------------------------------------

    def stats_report(self, base: int | None = None,
                     names: dict[int, str] | None = None) -> str:
        """Per-checkpoint contention table.

        :param base: when given, addresses print as indices off ``base``.
        :param names: optional ``index -> label`` map (e.g. from the
            compiler's :class:`~repro.sync.points.SyncPointAllocator`).
        """
        lines = [f"{'checkpoint':>12s}  {'rmws':>6s}  {'in':>6s}  "
                 f"{'out':>6s}  {'wakes':>6s}  {'maxcnt':>6s}  "
                 f"{'blocked':>7s}  name"]
        for address in sorted(self.stats):
            s = self.stats[address]
            if base is not None:
                index = address - base
                label = f"#{index}"
                name = (names or {}).get(index, "")
            else:
                label = f"@{address}"
                name = ""
            lines.append(
                f"{label:>12s}  {s.rmws:6d}  {s.checkins:6d}  "
                f"{s.checkouts:6d}  {s.wakeups:6d}  {s.max_counter:6d}  "
                f"{s.blocked_requests:7d}  {name}")
        return "\n".join(lines)
