"""Fast execution engine: lockstep bursts and event-driven sleep skips.

:meth:`Machine.step` is the *reference* cycle model — it re-arbitrates
every structure every cycle and is what the counters are defined against.
This module is the performance path layered on top of it.  It exploits the
two regimes that dominate the paper's workloads:

**Lockstep bursts** — on the improved design the cores spend most of their
time executing the *same* instruction at the *same* PC (the property the
I-Xbar broadcast and the synchronizer exist to create).  While every
running core shares one PC, no request is outstanding, and nothing is
pending in the synchronizer, a whole cycle collapses to "run one
predecoded closure once per running core" — or, for a lockstep LD/ST
whose requests provably win D-Xbar arbitration (distinct banks, or one
broadcast read), one inline pass over the banks.  The engine executes
the entire run of such instructions in a tight loop and credits the
activity counters in one batched update — the software mirror of a
broadcast fetch serving all cores from a single IM bank read.

**Superblock fusion** — inside a burst the engine still pays one closure
call per instruction per core.  :mod:`repro.cpu.blocks` compiles every
straight-line run (ending at jump/branch/memory boundaries) into one
fused function, so a burst advances whole blocks at a time: one fused
call per running core covers the block's cycles, with the activity
counters bulk-credited for the run.  A fused call is only made when the
burst has already proven that many uninterrupted cycles (PC uniform, no
pending IRQ/sync/memory work, horizon clearance); any guard failure
**deoptimizes** to the reference ``step()`` for that cycle, counted in
:attr:`EngineStats.deopt_count`.

**Divergent bursts** — when running cores sit at *different* PCs (or IM
broadcast is off), the reference serializes fetches through per-bank
rotating arbitration: one winner group per cycle, everyone else stalls.
That regime is just as invariant as lockstep while nothing external is
pending, so :meth:`FastEngine._divergent_burst` replays the I-Xbar
arbitration cycle by cycle — winner pick, broadcast group, priority
rotation, conflict/stall accounting — without the reference path's
per-cycle scans.  This is what keeps fully-divergent workloads (SQRT32)
*faster* than pure stepping instead of at parity.

**Sleep fast-forward** — duty-cycled streaming nodes sleep for hundreds of
cycles between ADC interrupts.  When no core is running and only a timer
or a scheduled interrupt can change machine state, the engine jumps
``trace.cycles`` straight to the cycle before the next event and
bulk-credits the sleep/halt counters, instead of ticking the idle
platform one cycle at a time.

All paths are cycle-exact: every counter in the
:class:`~repro.platform.trace.ActivityTrace`, every register and every
memory word ends up bit-for-bit identical to pure ``step()`` stepping
(guarded by ``tests/platform/test_engine_differential.py``).  Whenever a
precondition fails — probes attached, outstanding memory or synchronizer
work, pending interrupts, mode changes — the engine degrades to the
reference ``step()`` for that cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.predecode import BURSTABLE, KIND_JUMP, KIND_MEM, KIND_SEQ
from ..cpu.state import CoreMode

INFINITY = float("inf")

#: consecutive failed fast-path probes back off exponentially: the first
#: failure is free (a probe is a handful of attribute checks — far
#: cheaper than one reference cycle — and the cycle after a barrier RMW
#: or IRQ delivery is usually burstable again), then 1, 2, 4, ...
#: reference cycles are stepped between probes up to this cap.  The cap
#: only matters in step()-owned stretches the bursts cannot enter at
#: all (held memory conflicts, back-to-back IRQ delivery).
_MAX_BACKOFF = 16


class DeadlockError(RuntimeError):
    """All awake work is exhausted but some cores still sleep."""


class SimulationLimitError(RuntimeError):
    """The configured cycle budget was exceeded."""


@dataclass(slots=True)
class EngineStats:
    """Fast-path engagement counters (one update per burst/skip, so the
    bookkeeping adds no per-cycle cost).  The telemetry layer reads these
    to prove the fast engine stayed engaged during a traced run."""

    lockstep_bursts: int = 0
    lockstep_cycles: int = 0
    divergent_bursts: int = 0
    divergent_cycles: int = 0
    sleep_skips: int = 0
    sleep_cycles: int = 0
    #: fused superblock executions (one per block per burst engagement,
    #: regardless of how many cores ran the fused call)
    fused_blocks: int = 0
    #: cycles covered by fused blocks (a subset of ``lockstep_cycles``)
    fused_cycles: int = 0
    #: bursts abandoned to the reference ``step()`` by a guard check —
    #: a STOP/SYNC instruction, a memory pattern that may lose D-Xbar
    #: arbitration, an off-image or multi-bank PC.  Burst endings that
    #: need no reference fallback (horizon, convergence, divergence)
    #: are not deopts.
    deopt_count: int = 0
    #: size of the largest array-of-machines batch this run was part of
    #: (:func:`repro.cpu.vec.run_batch`); 0 when never batched
    batched_runs: int = 0
    #: widest runs x cores lane count this run executed vectorized in
    vector_width: int = 0
    #: vectorized block executions credited to this run
    vector_blocks: int = 0
    #: cycles advanced by the vectorized batch engine (disjoint from
    #: ``lockstep_cycles`` — a cycle is counted where it was executed)
    vector_cycles: int = 0
    #: times this run peeled out of a batch early (guard boundary hit
    #: before the natural end of program)
    peel_count: int = 0

    @property
    def fast_cycles(self) -> int:
        """Cycles consumed by the fast paths (the rest were ``step()``)."""
        return self.lockstep_cycles + self.divergent_cycles \
            + self.sleep_cycles + self.vector_cycles

    @property
    def engaged(self) -> bool:
        """True when at least one fast path fired during the run."""
        return bool(self.lockstep_bursts or self.divergent_bursts
                    or self.sleep_skips or self.vector_cycles)

    def as_dict(self) -> dict:
        return {
            "lockstep_bursts": self.lockstep_bursts,
            "lockstep_cycles": self.lockstep_cycles,
            "divergent_bursts": self.divergent_bursts,
            "divergent_cycles": self.divergent_cycles,
            "sleep_skips": self.sleep_skips,
            "sleep_cycles": self.sleep_cycles,
            "fused_blocks": self.fused_blocks,
            "fused_cycles": self.fused_cycles,
            "deopt_count": self.deopt_count,
            "batched_runs": self.batched_runs,
            "vector_width": self.vector_width,
            "vector_blocks": self.vector_blocks,
            "vector_cycles": self.vector_cycles,
            "peel_count": self.peel_count,
            "fast_cycles": self.fast_cycles,
            "engaged": self.engaged,
        }


class FastEngine:
    """Opportunistic fast paths around a :class:`Machine`'s ``step()``."""

    __slots__ = ("_machine", "stats")

    def __init__(self, machine):
        self._machine = machine
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, limit: int, *, raise_on_limit: bool = True) -> None:
        """Advance the machine until every core halts or ``limit`` cycles.

        Uses the fast paths whenever their preconditions hold and the
        reference ``step()`` otherwise.  Probes force pure ``step()``
        stepping (they observe individual cycles).
        """
        machine = self._machine
        trace = machine.trace
        step = machine.step
        fast = machine.fast_engine and not machine._probes
        backoff = 0           # slow cycles left before the next probe
        penalty = 0           # backoff charged by the next failed probe
        while True:
            if fast:
                if backoff:
                    backoff -= 1
                else:
                    before = trace.cycles
                    self._advance(limit)
                    if trace.cycles != before:
                        penalty = 0
                    else:
                        backoff = penalty
                        if penalty == 0:
                            penalty = 1
                        elif penalty < _MAX_BACKOFF:
                            penalty += penalty
            if trace.cycles >= limit:
                if not raise_on_limit:
                    return
                raise SimulationLimitError(
                    f"exceeded {limit} cycles "
                    f"(pcs={[c.pc for c in machine.cores]})")
            step()
            # Only a cycle with no activity at all can be the end of the
            # program or a deadlock; skip the scans otherwise.
            if machine._quiet:
                if machine.all_halted:
                    machine._finish_probes()
                    return
                machine._check_deadlock()

    # ------------------------------------------------------------------
    # Fast paths
    # ------------------------------------------------------------------

    def _advance(self, limit: int) -> None:
        """Consume as many cycles as the fast paths allow (maybe none)."""
        machine = self._machine
        cores = machine.cores
        while True:
            # Preconditions shared by both fast paths: nothing in flight
            # anywhere but the cores themselves.
            if (machine._outstanding_count or machine._pending_irq_count
                    or machine._wake_next):
                return
            sync = machine.synchronizer
            if sync is not None and sync.busy:
                return
            if machine.trace.cycles >= limit:
                return
            running = [c for c in cores if c.mode is CoreMode.RUNNING]
            if not running:
                self._sleep_fast_forward(limit)
                return
            pc = running[0].pc
            uniform = True
            for core in running:
                if core.pc != pc:
                    uniform = False
                    break
            if uniform and (len(running) == 1
                            or machine.config.im_broadcast):
                # One PC through the broadcast I-Xbar — or a single
                # requester, which wins its bank unconditionally even
                # without broadcast.
                if not self._lockstep_burst(running, pc, limit):
                    return
            else:
                # Divergent PCs (or broadcast off): the reference
                # serializes through rotating per-bank arbitration.
                if not self._divergent_burst(running, limit):
                    return

    def _next_event_cycle(self) -> float:
        """First future cycle at which a timer or scheduled IRQ fires."""
        machine = self._machine
        nxt = machine._next_timer_fire
        schedule = machine._irq_schedule
        if schedule:
            now = machine.trace.cycles
            for cycle in schedule:
                if now < cycle < nxt:
                    nxt = cycle
        return nxt

    def _idle_census(self) -> tuple[int, int, int]:
        """(halted, sleeping, barrier-sleeping) core counts."""
        machine = self._machine
        halted = sleeping = waiting = 0
        for cid, core in enumerate(machine.cores):
            mode = core.mode
            if mode is CoreMode.HALTED:
                halted += 1
            elif mode is CoreMode.SLEEPING:
                sleeping += 1
                if machine._barrier_sleeper[cid]:
                    waiting += 1
        return halted, sleeping, waiting

    def _lockstep_burst(self, running: list, pc: int, limit: int) -> bool:
        """Execute a run of plain instructions shared by all running cores.

        Mirrors, cycle for cycle, what ``step()`` does when every running
        core fetches one address through the broadcast I-Xbar and the
        instruction retires in one cycle: one IM bank access serves
        ``len(running)`` fetches, every running core is active, every
        idle core accrues its sleep/halt cycle.  A lockstep LD/ST whose
        requests provably win arbitration (distinct banks, or one
        broadcast read address) is served inline through
        :meth:`_mem_cycle`; everything else — SINC/SDEC, mode changes,
        PC divergence, bank conflicts — ends the burst, as does the
        cycle before the next timer/IRQ event.

        Whole straight-line runs are advanced by **fused superblocks**
        (:mod:`repro.cpu.blocks`): one fused call per running core
        covers the block's cycles, provided the block fits under the
        burst horizon.  Instructions without a fused block (short runs,
        code adjacent to memory/sync boundaries) take the
        per-instruction closure path.

        :returns: True if at least one cycle was consumed.
        """
        machine = self._machine
        trace = machine.trace
        decoded = machine._decoded
        im_len = len(decoded)
        # The last cycle this burst may simulate: stay inside the run
        # budget and strictly before the next external event, which must
        # be handled (and accounted) by the reference step().
        horizon = min(limit, self._next_event_cycle() - 1)
        cycles = trace.cycles
        if cycles >= horizon:
            return False

        table = machine._blocks
        if table is None:
            table = machine._block_table()
        blocks = table.blocks
        block_at = table.at

        # The synchronizer is idle (precondition), so no checkpoint word
        # is locked and no conflict group is draining; inline memory
        # cycles stay valid for the whole burst because they can create
        # neither.
        dxbar = machine.dxbar
        mem_ok = not (dxbar.locked_addresses or dxbar._groups)
        executed = 0
        fused_blocks = 0
        fused_cycles = 0
        deopt = False
        n = len(running)
        single = running[0] if n == 1 else None
        # A single requester without IM broadcast is served through the
        # per-bank arbitration path, which rotates the bank's priority
        # to (winner + 1) on every fetch; track the banks it touches so
        # the rotation can be replayed at flush time (idempotent — the
        # winner never changes).
        banks: set | None = None
        if single is not None and not machine.config.im_broadcast:
            banks = set()
            bank_words = machine.config.im_bank_words
        while cycles < horizon:
            if pc >= im_len:
                deopt = True          # let step() raise the fetch error
                break
            blk = blocks.get(pc, False)
            if blk is False:
                blk = block_at(pc)
            if blk is not None and cycles + blk[1] <= horizon:
                run = blk[0]
                length = blk[1]
                end_kind = blk[2]
                if single is not None:
                    run(single)
                else:
                    for core in running:
                        run(core)
                cycles += length
                executed += length
                fused_blocks += 1
                fused_cycles += length
                if banks is not None:
                    banks.add(pc // bank_words)
                    banks.add((pc + length - 1) // bank_words)
                if end_kind == KIND_SEQ:
                    pc += length
                    continue
                pc = running[0].pc
                if end_kind == KIND_JUMP or single is not None:
                    continue
                diverged = False
                for core in running:
                    if core.pc != pc:
                        diverged = True
                        break
                if diverged:
                    break
                continue
            rec = decoded[pc]
            kind = rec[0]
            if kind <= BURSTABLE:
                run = rec[1]
                if single is not None:
                    run(single)
                else:
                    for core in running:
                        run(core)
                cycles += 1
                executed += 1
                if banks is not None:
                    banks.add(pc // bank_words)
                if kind == KIND_SEQ:
                    pc += 1
                else:
                    pc = running[0].pc
                    if kind != KIND_JUMP:     # divergent control flow
                        diverged = False
                        for core in running:
                            if core.pc != pc:
                                diverged = True
                                break
                        if diverged:
                            break
            elif kind == KIND_MEM and mem_ok:
                if not self._mem_cycle(running, rec[1]):
                    deopt = True      # possible conflict: slow path
                    break
                cycles += 1
                executed += 1
                if banks is not None:
                    banks.add(pc // bank_words)
                pc += 1
            else:
                deopt = True          # synchronizer / mode change
                break
        if deopt:
            self.stats.deopt_count += 1
        if not executed:
            return False

        # Batched accounting — the per-cycle counters of `executed`
        # identical lockstep cycles, applied in one update.
        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles
        trace.core_active_cycles += executed * n
        trace.retired_ops += executed * n
        retired = trace.retired_per_core
        for core in running:
            retired[core.coreid] += executed
        trace.im_bank_accesses += executed
        trace.im_fetches_served += executed * n
        histogram = trace.lockstep_histogram
        histogram[n] = histogram.get(n, 0) + executed
        if halted:
            trace.core_halted_cycles += executed * halted
        if sleeping:
            trace.core_sleep_cycles += executed * sleeping
        if waiting:
            trace.sync_wait_cycles += executed * waiting
        if banks is not None:
            rotated = (single.coreid + 1) % machine.config.num_cores
            priority = machine.ixbar._priority
            for bank in banks:
                priority[bank] = rotated
        self.stats.lockstep_bursts += 1
        self.stats.lockstep_cycles += executed
        self.stats.fused_blocks += fused_blocks
        self.stats.fused_cycles += fused_cycles
        machine._quiet = False
        return True

    def _divergent_burst(self, running: list, limit: int) -> bool:
        """Serialize divergent running cores through I-Xbar arbitration.

        Replays, cycle for cycle, what the reference does when running
        cores request *different* addresses in one IM bank (or IM
        broadcast is disabled): the bank's rotating priority picks one
        winner, the broadcast group sharing the winner's address (just
        the winner without broadcast) fetches and executes, everyone
        else stalls, and the priority rotates past the winner.  Memory
        winners are served inline through :meth:`_mem_cycle`.

        Deopts to ``step()`` — committing nothing for that cycle — when
        the winner would stop/sync/fault, when a served memory pattern
        may lose D-Xbar arbitration, and for the (never exercised by
        the bundled kernels) multi-bank divergence case.  Exits cleanly
        at the horizon or when broadcast cores re-converge, handing
        back to the lockstep burst.

        :returns: True if at least one cycle was consumed.
        """
        machine = self._machine
        trace = machine.trace
        decoded = machine._decoded
        config = machine.config
        im_len = len(decoded)
        horizon = min(limit, self._next_event_cycle() - 1)
        cycles = trace.cycles
        if cycles >= horizon:
            return False
        bank_words = config.im_bank_words
        bank = running[0].pc // bank_words
        for core in running:
            if core.pc // bank_words != bank:
                self.stats.deopt_count += 1
                return False
        dxbar = machine.dxbar
        mem_ok = not (dxbar.locked_addresses or dxbar._groups)
        broadcast = config.im_broadcast
        ncores = config.num_cores
        priority = machine.ixbar._priority
        n = len(running)
        executed = 0
        served_total = 0
        conflicts = 0
        histogram: dict[int, int] = {}
        retired: dict[int, int] = {}
        deopt = False
        while cycles < horizon:
            start = priority[bank]
            winner = running[0]
            best = (winner.coreid - start) % ncores
            for core in running:
                key = (core.coreid - start) % ncores
                if key < best:
                    winner = core
                    best = key
            wpc = winner.pc
            if wpc >= im_len:
                deopt = True          # let step() raise the fetch error
                break
            if broadcast:
                served = [c for c in running if c.pc == wpc]
                if len(served) == n:
                    break             # converged: lockstep burst's regime
            else:
                served = [winner]
            rec = decoded[wpc]
            kind = rec[0]
            if kind <= BURSTABLE:
                run = rec[1]
                for core in served:
                    run(core)
            elif kind == KIND_MEM and mem_ok:
                if not self._mem_cycle(served, rec[1]):
                    deopt = True      # possible D-Xbar conflict
                    break
            else:
                deopt = True          # synchronizer / mode change
                break
            # Commit this cycle's arbitration bookkeeping (all guard
            # checks passed — nothing above mutated state before here
            # except the instruction effects themselves).
            priority[bank] = (winner.coreid + 1) % ncores
            ns = len(served)
            served_total += ns
            if ns < n:
                conflicts += 1
            histogram[ns] = histogram.get(ns, 0) + 1
            for core in served:
                cid = core.coreid
                retired[cid] = retired.get(cid, 0) + 1
            cycles += 1
            executed += 1
            moved = False
            for core in served:
                if core.pc // bank_words != bank:
                    moved = True
                    break
            if moved:
                break                 # next fetch is in another bank
        if deopt:
            self.stats.deopt_count += 1
        if not executed:
            return False

        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles
        trace.core_active_cycles += served_total
        trace.core_stall_cycles += executed * n - served_total
        trace.retired_ops += served_total
        retired_per_core = trace.retired_per_core
        for cid, count in retired.items():
            retired_per_core[cid] += count
        trace.im_bank_accesses += executed
        trace.im_fetches_served += served_total
        trace.im_conflict_cycles += conflicts
        trace_histogram = trace.lockstep_histogram
        for size, count in histogram.items():
            trace_histogram[size] = trace_histogram.get(size, 0) + count
        if halted:
            trace.core_halted_cycles += executed * halted
        if sleeping:
            trace.core_sleep_cycles += executed * sleeping
        if waiting:
            trace.sync_wait_cycles += executed * waiting
        self.stats.divergent_bursts += 1
        self.stats.divergent_cycles += executed
        machine._quiet = False
        return True

    def _mem_cycle(self, running: list, info: tuple) -> bool:
        """Serve one lockstep LD/ST cycle inline when it provably wins.

        Handles the two request patterns that cannot lose D-Xbar
        arbitration: every core hitting a distinct bank (the SPMD
        private-buffer pattern) and every core reading one shared
        address (one broadcast bank read serves all).  Reproduces the
        counter updates, round-robin priority rotation and serve order
        of ``DataCrossbar._serve_bank`` exactly.  Returns False —
        leaving all state untouched — on any other pattern (or any
        out-of-range address), so the reference ``step()`` arbitrates
        the conflict or raises the fault.
        """
        machine = self._machine
        config = machine.config
        is_write, rs, imm, rd = info
        words = machine.dm.words
        addrs = [(core.regs[rs] + imm) & 0xFFFF for core in running]
        if max(addrs) >= len(words):
            return False    # out of range: let the reference step fault
        if config.dm_interleaved:
            nb = config.dm_banks
            bankl = [addr % nb for addr in addrs]
        else:
            bank_words = config.dm_bank_words
            bankl = [addr // bank_words for addr in addrs]

        n = len(running)
        trace = machine.trace
        priority = machine.dxbar._priority
        ncores = config.num_cores
        if len(set(bankl)) != n:
            if is_write or not config.dm_broadcast:
                return False
            addr = addrs[0]
            for other in addrs:
                if other != addr:
                    return False
            bank = bankl[0]
            winner = min((core.coreid for core in running),
                         key=lambda cid: (cid - priority[bank]) % ncores)
            priority[bank] = (winner + 1) % ncores
            value = words[addr]
            trace.dm_bank_reads += 1
            for core in running:
                core.regs[rd] = value
                core.pc += 1
            trace.dm_served += n
            return True
        if is_write:
            for core, addr, bank in zip(running, addrs, bankl):
                priority[bank] = (core.coreid + 1) % ncores
                words[addr] = core.regs[rd] & 0xFFFF
                core.pc += 1
            trace.dm_bank_writes += n
        else:
            for core, addr, bank in zip(running, addrs, bankl):
                priority[bank] = (core.coreid + 1) % ncores
                core.regs[rd] = words[addr]
                core.pc += 1
            trace.dm_bank_reads += n
        trace.dm_served += n
        return True

    def _sleep_fast_forward(self, limit: int) -> bool:
        """Jump over an all-asleep stretch to the next timer/IRQ event.

        Only taken when the platform is fully event-driven: no core runs,
        nothing is in flight, and no pending interrupt is deliverable —
        so *nothing* can change until the next timer fire or scheduled
        interrupt.  Credits every skipped cycle's sleep/halt (and barrier
        wait) counters in bulk.

        :returns: True if at least one cycle was skipped.
        """
        machine = self._machine
        if machine._pending_irq_count:
            # A deliverable pending IRQ changes state on the very next
            # cycle; leave it to the reference step().  Undeliverable
            # ones (masked, halted, checked out at a barrier) stay
            # pending for the whole sleep period.
            for cid, pending in enumerate(machine._pending_irq):
                if not pending:
                    continue
                core = machine.cores[cid]
                if (core.interrupts_enabled
                        and core.mode is not CoreMode.HALTED
                        and not machine._barrier_sleeper[cid]):
                    return False
        next_event = self._next_event_cycle()
        if next_event == INFINITY:
            return False              # deadlock or halt: step() decides
        trace = machine.trace
        target = min(limit, next_event - 1)
        skipped = target - trace.cycles
        if skipped <= 0:
            return False
        halted, sleeping, waiting = self._idle_census()
        if not sleeping:
            return False              # fully halted: run loop terminates
        trace.cycles = target
        trace.core_sleep_cycles += skipped * sleeping
        if halted:
            trace.core_halted_cycles += skipped * halted
        if waiting:
            trace.sync_wait_cycles += skipped * waiting
        self.stats.sleep_skips += 1
        self.stats.sleep_cycles += skipped
        machine._quiet = True
        return True
