"""Fast execution engine: lockstep bursts and event-driven sleep skips.

:meth:`Machine.step` is the *reference* cycle model — it re-arbitrates
every structure every cycle and is what the counters are defined against.
This module is the performance path layered on top of it.  It exploits the
two regimes that dominate the paper's workloads:

**Lockstep bursts** — on the improved design the cores spend most of their
time executing the *same* instruction at the *same* PC (the property the
I-Xbar broadcast and the synchronizer exist to create).  While every
running core shares one PC, no request is outstanding, and nothing is
pending in the synchronizer, a whole cycle collapses to "run one
predecoded closure once per running core" — or, for a lockstep LD/ST
whose requests provably win D-Xbar arbitration (distinct banks, or one
broadcast read), one inline pass over the banks.  The engine executes
the entire run of such instructions in a tight loop and credits the
activity counters in one batched update — the software mirror of a
broadcast fetch serving all cores from a single IM bank read.

**Sleep fast-forward** — duty-cycled streaming nodes sleep for hundreds of
cycles between ADC interrupts.  When no core is running and only a timer
or a scheduled interrupt can change machine state, the engine jumps
``trace.cycles`` straight to the cycle before the next event and
bulk-credits the sleep/halt counters, instead of ticking the idle
platform one cycle at a time.

Both paths are cycle-exact: every counter in the
:class:`~repro.platform.trace.ActivityTrace`, every register and every
memory word ends up bit-for-bit identical to pure ``step()`` stepping
(guarded by ``tests/platform/test_engine_differential.py``).  Whenever a
precondition fails — probes attached, divergent PCs, outstanding memory
or synchronizer work, pending interrupts, broadcast disabled — the engine
degrades to the reference ``step()`` for that cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.predecode import BURSTABLE, KIND_JUMP, KIND_MEM, KIND_SEQ
from ..cpu.state import CoreMode

INFINITY = float("inf")

#: after a failed fast-path probe, this many reference cycles are stepped
#: before probing again (doubling per consecutive failure up to the cap).
#: Keeps the probe overhead negligible on divergent workloads while
#: re-engaging within a few cycles once lockstep re-forms.
_MAX_BACKOFF = 16


class DeadlockError(RuntimeError):
    """All awake work is exhausted but some cores still sleep."""


class SimulationLimitError(RuntimeError):
    """The configured cycle budget was exceeded."""


@dataclass(slots=True)
class EngineStats:
    """Fast-path engagement counters (one update per burst/skip, so the
    bookkeeping adds no per-cycle cost).  The telemetry layer reads these
    to prove the fast engine stayed engaged during a traced run."""

    lockstep_bursts: int = 0
    lockstep_cycles: int = 0
    sleep_skips: int = 0
    sleep_cycles: int = 0

    @property
    def fast_cycles(self) -> int:
        """Cycles consumed by the fast paths (the rest were ``step()``)."""
        return self.lockstep_cycles + self.sleep_cycles

    @property
    def engaged(self) -> bool:
        """True when at least one fast path fired during the run."""
        return bool(self.lockstep_bursts or self.sleep_skips)

    def as_dict(self) -> dict:
        return {
            "lockstep_bursts": self.lockstep_bursts,
            "lockstep_cycles": self.lockstep_cycles,
            "sleep_skips": self.sleep_skips,
            "sleep_cycles": self.sleep_cycles,
            "fast_cycles": self.fast_cycles,
            "engaged": self.engaged,
        }


class FastEngine:
    """Opportunistic fast paths around a :class:`Machine`'s ``step()``."""

    __slots__ = ("_machine", "stats")

    def __init__(self, machine):
        self._machine = machine
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, limit: int, *, raise_on_limit: bool = True) -> None:
        """Advance the machine until every core halts or ``limit`` cycles.

        Uses the fast paths whenever their preconditions hold and the
        reference ``step()`` otherwise.  Probes force pure ``step()``
        stepping (they observe individual cycles).
        """
        machine = self._machine
        trace = machine.trace
        step = machine.step
        fast = machine.fast_engine and not machine._probes
        backoff = 0           # slow cycles left before the next probe
        penalty = 1           # backoff charged by the next failed probe
        while True:
            if fast:
                if backoff:
                    backoff -= 1
                else:
                    before = trace.cycles
                    self._advance(limit)
                    if trace.cycles != before:
                        penalty = 1
                    else:
                        backoff = penalty
                        if penalty < _MAX_BACKOFF:
                            penalty += penalty
            if trace.cycles >= limit:
                if not raise_on_limit:
                    return
                raise SimulationLimitError(
                    f"exceeded {limit} cycles "
                    f"(pcs={[c.pc for c in machine.cores]})")
            step()
            # Only a cycle with no activity at all can be the end of the
            # program or a deadlock; skip the scans otherwise.
            if machine._quiet:
                if machine.all_halted:
                    machine._finish_probes()
                    return
                machine._check_deadlock()

    # ------------------------------------------------------------------
    # Fast paths
    # ------------------------------------------------------------------

    def _advance(self, limit: int) -> None:
        """Consume as many cycles as the fast paths allow (maybe none)."""
        machine = self._machine
        cores = machine.cores
        while True:
            # Preconditions shared by both fast paths: nothing in flight
            # anywhere but the cores themselves.
            if (machine._outstanding_count or machine._pending_irq_count
                    or machine._wake_next):
                return
            sync = machine.synchronizer
            if sync is not None and sync.busy:
                return
            if machine.trace.cycles >= limit:
                return
            running = [c for c in cores if c.mode is CoreMode.RUNNING]
            if not running:
                self._sleep_fast_forward(limit)
                return
            if not machine.config.im_broadcast:
                return
            pc = running[0].pc
            for core in running:
                if core.pc != pc:
                    return
            if not self._lockstep_burst(running, pc, limit):
                return

    def _next_event_cycle(self) -> float:
        """First future cycle at which a timer or scheduled IRQ fires."""
        machine = self._machine
        nxt = machine._next_timer_fire
        schedule = machine._irq_schedule
        if schedule:
            now = machine.trace.cycles
            for cycle in schedule:
                if now < cycle < nxt:
                    nxt = cycle
        return nxt

    def _idle_census(self) -> tuple[int, int, int]:
        """(halted, sleeping, barrier-sleeping) core counts."""
        machine = self._machine
        halted = sleeping = waiting = 0
        for cid, core in enumerate(machine.cores):
            mode = core.mode
            if mode is CoreMode.HALTED:
                halted += 1
            elif mode is CoreMode.SLEEPING:
                sleeping += 1
                if machine._barrier_sleeper[cid]:
                    waiting += 1
        return halted, sleeping, waiting

    def _lockstep_burst(self, running: list, pc: int, limit: int) -> bool:
        """Execute a run of plain instructions shared by all running cores.

        Mirrors, cycle for cycle, what ``step()`` does when every running
        core fetches one address through the broadcast I-Xbar and the
        instruction retires in one cycle: one IM bank access serves
        ``len(running)`` fetches, every running core is active, every
        idle core accrues its sleep/halt cycle.  A lockstep LD/ST whose
        requests provably win arbitration (distinct banks, or one
        broadcast read address) is served inline through
        :meth:`_mem_cycle`; everything else — SINC/SDEC, mode changes,
        PC divergence, bank conflicts — ends the burst, as does the
        cycle before the next timer/IRQ event.

        :returns: True if at least one cycle was consumed.
        """
        machine = self._machine
        trace = machine.trace
        decoded = machine._decoded
        im_len = len(decoded)
        # The last cycle this burst may simulate: stay inside the run
        # budget and strictly before the next external event, which must
        # be handled (and accounted) by the reference step().
        horizon = min(limit, self._next_event_cycle() - 1)
        cycles = trace.cycles
        if cycles >= horizon:
            return False

        # The synchronizer is idle (precondition), so no checkpoint word
        # is locked and no conflict group is draining; inline memory
        # cycles stay valid for the whole burst because they can create
        # neither.
        dxbar = machine.dxbar
        mem_ok = not (dxbar.locked_addresses or dxbar._groups)
        executed = 0
        n = len(running)
        single = running[0] if n == 1 else None
        while cycles < horizon:
            if pc >= im_len:
                break                 # let step() raise the fetch error
            rec = decoded[pc]
            kind = rec[0]
            if kind <= BURSTABLE:
                run = rec[1]
                if single is not None:
                    run(single)
                else:
                    for core in running:
                        run(core)
                cycles += 1
                executed += 1
                if kind == KIND_SEQ:
                    pc += 1
                else:
                    pc = running[0].pc
                    if kind != KIND_JUMP:     # divergent control flow
                        diverged = False
                        for core in running:
                            if core.pc != pc:
                                diverged = True
                                break
                        if diverged:
                            break
            elif kind == KIND_MEM and mem_ok:
                if not self._mem_cycle(running, rec[1]):
                    break             # possible conflict: slow path
                cycles += 1
                executed += 1
                pc += 1
            else:
                break                 # synchronizer / mode change: slow path
        if not executed:
            return False

        # Batched accounting — the per-cycle counters of `executed`
        # identical lockstep cycles, applied in one update.
        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles
        trace.core_active_cycles += executed * n
        trace.retired_ops += executed * n
        retired = trace.retired_per_core
        for core in running:
            retired[core.coreid] += executed
        trace.im_bank_accesses += executed
        trace.im_fetches_served += executed * n
        histogram = trace.lockstep_histogram
        histogram[n] = histogram.get(n, 0) + executed
        if halted:
            trace.core_halted_cycles += executed * halted
        if sleeping:
            trace.core_sleep_cycles += executed * sleeping
        if waiting:
            trace.sync_wait_cycles += executed * waiting
        self.stats.lockstep_bursts += 1
        self.stats.lockstep_cycles += executed
        machine._quiet = False
        return True

    def _mem_cycle(self, running: list, info: tuple) -> bool:
        """Serve one lockstep LD/ST cycle inline when it provably wins.

        Handles the two request patterns that cannot lose D-Xbar
        arbitration: every core hitting a distinct bank (the SPMD
        private-buffer pattern) and every core reading one shared
        address (one broadcast bank read serves all).  Reproduces the
        counter updates, round-robin priority rotation, serve order and
        error behaviour of ``DataCrossbar._serve_bank`` exactly.
        Returns False — leaving all state untouched — on any other
        pattern, so the reference ``step()`` arbitrates the conflict.
        """
        machine = self._machine
        config = machine.config
        is_write, rs, imm, rd = info
        interleaved = config.dm_interleaved
        banks = config.dm_banks
        bank_words = config.dm_bank_words
        plan = []
        seen = set()
        clash = False
        for core in running:
            addr = (core.regs[rs] + imm) & 0xFFFF
            bank = addr % banks if interleaved else addr // bank_words
            if bank in seen:
                clash = True
            else:
                seen.add(bank)
            plan.append((core, addr, bank))

        dm = machine.dm
        trace = machine.trace
        priority = machine.dxbar._priority
        ncores = config.num_cores
        if clash:
            if is_write or not config.dm_broadcast:
                return False
            addr = plan[0][1]
            for entry in plan:
                if entry[1] != addr:
                    return False
            bank = plan[0][2]
            winner = min((core.coreid for core in running),
                         key=lambda cid: (cid - priority[bank]) % ncores)
            priority[bank] = (winner + 1) % ncores
            value = dm.read(addr)
            trace.dm_bank_reads += 1
            for core in running:
                core.regs[rd] = value
                core.pc += 1
            trace.dm_served += len(plan)
            return True
        if is_write:
            for core, addr, bank in plan:
                priority[bank] = (core.coreid + 1) % ncores
                dm.write(addr, core.regs[rd])
                core.pc += 1
            trace.dm_bank_writes += len(plan)
        else:
            for core, addr, bank in plan:
                priority[bank] = (core.coreid + 1) % ncores
                core.regs[rd] = dm.read(addr)
                core.pc += 1
            trace.dm_bank_reads += len(plan)
        trace.dm_served += len(plan)
        return True

    def _sleep_fast_forward(self, limit: int) -> bool:
        """Jump over an all-asleep stretch to the next timer/IRQ event.

        Only taken when the platform is fully event-driven: no core runs,
        nothing is in flight, and no pending interrupt is deliverable —
        so *nothing* can change until the next timer fire or scheduled
        interrupt.  Credits every skipped cycle's sleep/halt (and barrier
        wait) counters in bulk.

        :returns: True if at least one cycle was skipped.
        """
        machine = self._machine
        if machine._pending_irq_count:
            # A deliverable pending IRQ changes state on the very next
            # cycle; leave it to the reference step().  Undeliverable
            # ones (masked, halted, checked out at a barrier) stay
            # pending for the whole sleep period.
            for cid, pending in enumerate(machine._pending_irq):
                if not pending:
                    continue
                core = machine.cores[cid]
                if (core.interrupts_enabled
                        and core.mode is not CoreMode.HALTED
                        and not machine._barrier_sleeper[cid]):
                    return False
        next_event = self._next_event_cycle()
        if next_event == INFINITY:
            return False              # deadlock or halt: step() decides
        trace = machine.trace
        target = min(limit, next_event - 1)
        skipped = target - trace.cycles
        if skipped <= 0:
            return False
        halted, sleeping, waiting = self._idle_census()
        if not sleeping:
            return False              # fully halted: run loop terminates
        trace.cycles = target
        trace.core_sleep_cycles += skipped * sleeping
        if halted:
            trace.core_halted_cycles += skipped * halted
        if waiting:
            trace.sync_wait_cycles += skipped * waiting
        self.stats.sleep_skips += 1
        self.stats.sleep_cycles += skipped
        machine._quiet = True
        return True
