"""Fast execution engine: lockstep bursts and event-driven sleep skips.

:meth:`Machine.step` is the *reference* cycle model — it re-arbitrates
every structure every cycle and is what the counters are defined against.
This module is the performance path layered on top of it.  It exploits the
two regimes that dominate the paper's workloads:

**Lockstep bursts** — on the improved design the cores spend most of their
time executing the *same* instruction at the *same* PC (the property the
I-Xbar broadcast and the synchronizer exist to create).  While every
running core shares one PC, no request is outstanding, and nothing is
pending in the synchronizer, a whole cycle collapses to "run one
predecoded closure once per running core" — or, for a lockstep LD/ST
whose requests provably win D-Xbar arbitration (distinct banks, or one
broadcast read), one inline pass over the banks.  The engine executes
the entire run of such instructions in a tight loop and credits the
activity counters in one batched update — the software mirror of a
broadcast fetch serving all cores from a single IM bank read.

**Superblock fusion** — inside a burst the engine still pays one closure
call per instruction per core.  :mod:`repro.cpu.blocks` compiles every
straight-line run (ending at jump/branch/memory boundaries) into one
fused function, so a burst advances whole blocks at a time: one fused
call per running core covers the block's cycles, with the activity
counters bulk-credited for the run.  A fused call is only made when the
burst has already proven that many uninterrupted cycles (PC uniform, no
pending IRQ/sync/memory work, horizon clearance); any guard failure
**deoptimizes** to the reference ``step()`` for that cycle, counted in
:attr:`EngineStats.deopt_count`.

**Divergent bursts** — when running cores sit at *different* PCs (or IM
broadcast is off), the reference serializes fetches through per-bank
rotating arbitration: one winner group per cycle, everyone else stalls.
That regime is just as invariant as lockstep while nothing external is
pending, so :meth:`FastEngine._divergent_burst` replays the I-Xbar
arbitration cycle by cycle — winner pick, broadcast group, priority
rotation, conflict/stall accounting — without the reference path's
per-cycle scans.  This is what keeps fully-divergent workloads (SQRT32)
*faster* than pure stepping instead of at parity.

**Merged-barrier replay** — a lockstep ``SINC``/``SDEC`` collapses, in
the reference, to one merged two-cycle checkpoint read-modify-write
that touches nothing but the checkpoint word.
:meth:`FastEngine._lockstep_sync` replays both cycles in one batched
update (flags/counter arithmetic, release/wake latching, every trace
and per-checkpoint counter, listener callbacks) instead of handing the
window to ``step()`` — the dominant leftover cost in barrier-dense
kernels.

**Sleep fast-forward** — duty-cycled streaming nodes sleep for hundreds of
cycles between ADC interrupts.  When no core is running and only a timer
or a scheduled interrupt can change machine state, the engine jumps
``trace.cycles`` straight to the cycle before the next event and
bulk-credits the sleep/halt counters, instead of ticking the idle
platform one cycle at a time.

All paths are cycle-exact: every counter in the
:class:`~repro.platform.trace.ActivityTrace`, every register and every
memory word ends up bit-for-bit identical to pure ``step()`` stepping
(guarded by ``tests/platform/test_engine_differential.py``).  Whenever a
precondition fails — probes attached, outstanding memory or synchronizer
work, pending interrupts, mode changes — the engine degrades to the
reference ``step()`` for that cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.executor import checkpoint_address
from ..cpu.predecode import BURSTABLE, KIND_JUMP, KIND_MEM, KIND_SEQ, \
    KIND_SYNC
from ..cpu.state import CoreMode
from ..isa.spec import Opcode
from .synchronizer import CheckpointStats, SyncCompletion, \
    pack_checkpoint, unpack_checkpoint

INFINITY = float("inf")

#: consecutive failed fast-path probes back off exponentially: the first
#: failure is free (a probe is a handful of attribute checks — far
#: cheaper than one reference cycle — and the cycle after a barrier RMW
#: or IRQ delivery is usually burstable again), then 1, 2, 4, ...
#: reference cycles are stepped between probes up to this cap.  The cap
#: only matters in step()-owned stretches the bursts cannot enter at
#: all (held memory conflicts, back-to-back IRQ delivery).
_MAX_BACKOFF = 16


class DeadlockError(RuntimeError):
    """All awake work is exhausted but some cores still sleep."""


class SimulationLimitError(RuntimeError):
    """The configured cycle budget was exceeded."""


@dataclass(slots=True)
class EngineStats:
    """Fast-path engagement counters (one update per burst/skip, so the
    bookkeeping adds no per-cycle cost).  The telemetry layer reads these
    to prove the fast engine stayed engaged during a traced run."""

    lockstep_bursts: int = 0
    lockstep_cycles: int = 0
    divergent_bursts: int = 0
    divergent_cycles: int = 0
    sleep_skips: int = 0
    sleep_cycles: int = 0
    #: fused superblock executions (one per block per burst engagement,
    #: regardless of how many cores ran the fused call)
    fused_blocks: int = 0
    #: cycles covered by fused blocks (a subset of ``lockstep_cycles``)
    fused_cycles: int = 0
    #: bursts abandoned by a guard check — a STOP/SYNC instruction, a
    #: memory pattern that may lose D-Xbar arbitration, an off-image or
    #: multi-bank PC.  The abandoned cycle is replayed by the reference
    #: ``step()`` (or, for a lockstep checkpoint RMW, by the barrier
    #: fast path).  Burst endings that need no fallback (horizon,
    #: convergence, divergence) are not deopts.
    deopt_count: int = 0
    #: executions of fused blocks containing inlined memory ops, and
    #: the fused LD/STs those executions served (per block execution,
    #: not per core — mirrors ``fused_blocks``)
    mem_fused_blocks: int = 0
    mem_fused_ops: int = 0
    #: block-termination census: every fused-block execution credits
    #: the reason its block stopped fusing further instructions —
    #: an unfusable memory op (``term_mem``), a synchronizer op
    #: (``term_sync``), a mode change / unfusable instruction / end of
    #: image (``term_stop``), a control-flow terminator
    #: (``term_diverge``), or the MAX_BLOCK cap (``term_cap``).
    #: ``term_guard`` instead counts *runtime* aborts: a memory-fused
    #: block whose cross-core address re-check failed (wrong or
    #: config-defeated fact) and was rolled back before committing.
    term_mem: int = 0
    term_sync: int = 0
    term_stop: int = 0
    term_diverge: int = 0
    term_cap: int = 0
    term_guard: int = 0
    #: if-converted (predicated) fused-block executions: the block
    #: computed both hammock arms branch-free and charged the taken
    #: path's cycle cost, and the cycles those executions consumed
    pred_blocks: int = 0
    pred_cycles: int = 0
    #: predicated executions rolled back because the cores disagreed on
    #: which arms they took (replayed per-instruction — a deopt)
    pred_aborts: int = 0
    #: merged lockstep SINC/SDEC read-modify-writes replayed by the
    #: fast path (two cycles each) instead of the reference ``step()``
    sync_fused_rmws: int = 0
    #: size of the largest array-of-machines batch this run was part of
    #: (:func:`repro.cpu.vec.run_batch`); 0 when never batched
    batched_runs: int = 0
    #: widest runs x cores lane count this run executed vectorized in
    vector_width: int = 0
    #: vectorized block executions credited to this run
    vector_blocks: int = 0
    #: cycles advanced by the vectorized batch engine (disjoint from
    #: ``lockstep_cycles`` — a cycle is counted where it was executed)
    vector_cycles: int = 0
    #: times this run peeled out of a batch early (guard boundary hit
    #: before the natural end of program)
    peel_count: int = 0

    @property
    def fast_cycles(self) -> int:
        """Cycles consumed by the fast paths (the rest were ``step()``)."""
        return self.lockstep_cycles + self.divergent_cycles \
            + self.sleep_cycles + self.vector_cycles

    @property
    def engaged(self) -> bool:
        """True when at least one fast path fired during the run."""
        return bool(self.lockstep_bursts or self.divergent_bursts
                    or self.sleep_skips or self.vector_cycles
                    or self.sync_fused_rmws)

    def as_dict(self) -> dict:
        return {
            "lockstep_bursts": self.lockstep_bursts,
            "lockstep_cycles": self.lockstep_cycles,
            "divergent_bursts": self.divergent_bursts,
            "divergent_cycles": self.divergent_cycles,
            "sleep_skips": self.sleep_skips,
            "sleep_cycles": self.sleep_cycles,
            "fused_blocks": self.fused_blocks,
            "fused_cycles": self.fused_cycles,
            "deopt_count": self.deopt_count,
            "mem_fused_blocks": self.mem_fused_blocks,
            "mem_fused_ops": self.mem_fused_ops,
            "term_mem": self.term_mem,
            "term_sync": self.term_sync,
            "term_stop": self.term_stop,
            "term_diverge": self.term_diverge,
            "term_cap": self.term_cap,
            "term_guard": self.term_guard,
            "pred_blocks": self.pred_blocks,
            "pred_cycles": self.pred_cycles,
            "pred_aborts": self.pred_aborts,
            "sync_fused_rmws": self.sync_fused_rmws,
            "batched_runs": self.batched_runs,
            "vector_width": self.vector_width,
            "vector_blocks": self.vector_blocks,
            "vector_cycles": self.vector_cycles,
            "peel_count": self.peel_count,
            "fast_cycles": self.fast_cycles,
            "engaged": self.engaged,
        }


class FastEngine:
    """Opportunistic fast paths around a :class:`Machine`'s ``step()``."""

    __slots__ = ("_machine", "stats")

    def __init__(self, machine):
        self._machine = machine
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, limit: int, *, raise_on_limit: bool = True) -> None:
        """Advance the machine until every core halts or ``limit`` cycles.

        Uses the fast paths whenever their preconditions hold and the
        reference ``step()`` otherwise.  Probes force pure ``step()``
        stepping (they observe individual cycles).
        """
        machine = self._machine
        trace = machine.trace
        step = machine.step
        fast = machine.fast_engine and not machine._probes
        backoff = 0           # slow cycles left before the next probe
        penalty = 0           # backoff charged by the next failed probe
        while True:
            if fast:
                if backoff:
                    backoff -= 1
                else:
                    before = trace.cycles
                    self._advance(limit)
                    if trace.cycles != before:
                        penalty = 0
                    else:
                        backoff = penalty
                        if penalty == 0:
                            penalty = 1
                        elif penalty < _MAX_BACKOFF:
                            penalty += penalty
            if trace.cycles >= limit:
                if not raise_on_limit:
                    return
                raise SimulationLimitError(
                    f"exceeded {limit} cycles "
                    f"(pcs={[c.pc for c in machine.cores]})")
            step()
            # Only a cycle with no activity at all can be the end of the
            # program or a deadlock; skip the scans otherwise.
            if machine._quiet:
                if machine.all_halted:
                    machine._finish_probes()
                    return
                machine._check_deadlock()

    # ------------------------------------------------------------------
    # Fast paths
    # ------------------------------------------------------------------

    def _advance(self, limit: int) -> None:
        """Consume as many cycles as the fast paths allow (maybe none)."""
        machine = self._machine
        cores = machine.cores
        while True:
            # Preconditions shared by both fast paths: nothing in flight
            # anywhere but the cores themselves.
            if (machine._outstanding_count or machine._pending_irq_count
                    or machine._wake_next):
                return
            sync = machine.synchronizer
            if sync is not None and sync.busy:
                return
            if machine.trace.cycles >= limit:
                return
            running = [c for c in cores if c.mode is CoreMode.RUNNING]
            if not running:
                self._sleep_fast_forward(limit)
                return
            pc = running[0].pc
            uniform = True
            for core in running:
                if core.pc != pc:
                    uniform = False
                    break
            if uniform and (len(running) == 1
                            or machine.config.im_broadcast):
                # One PC through the broadcast I-Xbar — or a single
                # requester, which wins its bank unconditionally even
                # without broadcast.
                decoded = machine._decoded
                if (pc < len(decoded)
                        and decoded[pc][0] == KIND_SYNC):
                    # A lockstep SINC/SDEC merges into one two-cycle
                    # checkpoint RMW — replay it without step().
                    if not self._lockstep_sync(running, pc,
                                               decoded[pc][2], limit):
                        return
                    continue
                if not self._lockstep_burst(running, pc, limit):
                    return
            else:
                # Divergent PCs (or broadcast off): the reference
                # serializes through rotating per-bank arbitration.
                if not self._divergent_burst(running, limit):
                    return

    def _next_event_cycle(self) -> float:
        """First future cycle at which a timer or scheduled IRQ fires."""
        machine = self._machine
        nxt = machine._next_timer_fire
        schedule = machine._irq_schedule
        if schedule:
            now = machine.trace.cycles
            for cycle in schedule:
                if now < cycle < nxt:
                    nxt = cycle
        return nxt

    def _idle_census(self) -> tuple[int, int, int]:
        """(halted, sleeping, barrier-sleeping) core counts."""
        machine = self._machine
        halted = sleeping = waiting = 0
        for cid, core in enumerate(machine.cores):
            mode = core.mode
            if mode is CoreMode.HALTED:
                halted += 1
            elif mode is CoreMode.SLEEPING:
                sleeping += 1
                if machine._barrier_sleeper[cid]:
                    waiting += 1
        return halted, sleeping, waiting

    def _lockstep_burst(self, running: list, pc: int, limit: int) -> bool:
        """Execute a run of plain instructions shared by all running cores.

        Mirrors, cycle for cycle, what ``step()`` does when every running
        core fetches one address through the broadcast I-Xbar and the
        instruction retires in one cycle: one IM bank access serves
        ``len(running)`` fetches, every running core is active, every
        idle core accrues its sleep/halt cycle.  A lockstep LD/ST whose
        requests provably win arbitration (distinct banks, or one
        broadcast read address) is served inline through
        :meth:`_mem_cycle`; everything else — SINC/SDEC, mode changes,
        PC divergence, bank conflicts — ends the burst, as does the
        cycle before the next timer/IRQ event.

        Whole straight-line runs are advanced by **fused superblocks**
        (:mod:`repro.cpu.blocks`): one fused call per running core
        covers the block's cycles, provided the block fits under the
        burst horizon.  Instructions without a fused block (short runs,
        code adjacent to memory/sync boundaries) take the
        per-instruction closure path.

        :returns: True if at least one cycle was consumed.
        """
        machine = self._machine
        trace = machine.trace
        decoded = machine._decoded
        im_len = len(decoded)
        # The last cycle this burst may simulate: stay inside the run
        # budget and strictly before the next external event, which must
        # be handled (and accounted) by the reference step().
        horizon = min(limit, self._next_event_cycle() - 1)
        cycles = trace.cycles
        if cycles >= horizon:
            return False

        table = machine._blocks
        if table is None:
            table = machine._block_table()
        blocks = table.blocks
        block_at = table.at

        # The synchronizer is idle (precondition), so no checkpoint word
        # is locked and no conflict group is draining; inline memory
        # cycles stay valid for the whole burst because they can create
        # neither.
        dxbar = machine.dxbar
        mem_ok = not (dxbar.locked_addresses or dxbar._groups)
        config = machine.config
        words = machine.dm.words
        dm_priority = dxbar._priority
        ncores = config.num_cores
        interleaved = config.dm_interleaved
        nb = config.dm_banks
        bw = config.dm_bank_words
        dm_reads = dm_writes = dm_served = 0
        mem_blocks = 0
        mem_ops = 0
        terms: dict = {}
        executed = 0
        n_syncs = 0
        fused_blocks = 0
        fused_cycles = 0
        pred_blocks_l = 0
        pred_cycles_l = 0
        deopt = False
        n = len(running)
        single = running[0] if n == 1 else None
        # A single requester without IM broadcast is served through the
        # per-bank arbitration path, which rotates the bank's priority
        # to (winner + 1) on every fetch; track the banks it touches so
        # the rotation can be replayed at flush time (idempotent — the
        # winner never changes).
        banks: set | None = None
        if single is not None and not machine.config.im_broadcast:
            banks = set()
            bank_words = machine.config.im_bank_words
        while cycles < horizon:
            if pc >= im_len:
                deopt = True          # let step() raise the fetch error
                break
            blk = blocks.get(pc, False)
            if blk is False:
                blk = block_at(pc)
            if (blk is not None and cycles + blk[1] <= horizon
                    and (mem_ok or not blk[5])
                    and (banks is None or not blk[8])):
                run = blk[0]
                length = blk[1]
                end_kind = blk[2]
                memspec = blk[5]
                preds = blk[8]
                if memspec or preds:
                    # Memory-fused / predicated block: pure phase per
                    # core, re-check the actual cross-core address
                    # pattern (the static facts are hints, not trusted
                    # proofs) and cross-core arm agreement, then commit.
                    # Any failure aborts with *nothing* committed, so
                    # the reference step() replays from the block start
                    # bit-exactly.
                    try:
                        if single is not None:
                            outs = (run(single, words),)
                        else:
                            outs = [run(core, words) for core in running]
                    except IndexError:
                        self.stats.term_guard += 1
                        deopt = True      # out-of-range: step() faults
                        break
                    hp = 0
                    gates = blk[9]
                    if preds:
                        # Lockstep cores must take the same arms, or
                        # the block-granular cycle accounting (and the
                        # op-major store order) no longer matches the
                        # reference; disagreement replays per-core.
                        hp = outs[0][blk[10]]
                        if n > 1:
                            for out in outs:
                                if out[blk[10]] != hp:
                                    hp = -1
                                    break
                            if hp < 0:
                                self.stats.pred_aborts += 1
                                deopt = True
                                break
                        length = outs[0][blk[11]]
                    if n > 1 and memspec and not self._mem_guard(
                            memspec, outs, n, gates, hp):
                        self.stats.term_guard += 1
                        deopt = True      # fact wrong: step() arbitrates
                        break
                    # Deferred stores land op-major across cores — the
                    # reference's cycle order (all cores serve op j
                    # before any core reaches op j+1).
                    for j, value_at in blk[6]:
                        if gates and gates[j] and not hp & gates[j]:
                            continue      # arm not taken: no store
                        for out in outs:
                            words[out[j]] = out[value_at]
                    commit = blk[7]
                    for core, out in zip(running, outs):
                        commit(core, out)
                    # Replay DataCrossbar priority rotation and bulk-
                    # credit its counters, op by op in program order.
                    served_ops = 0
                    for j, (uniform, is_write) in enumerate(memspec):
                        if gates and gates[j] and not hp & gates[j]:
                            continue      # arm not taken: no access
                        served_ops += 1
                        if uniform and n > 1:
                            addr = outs[0][j]
                            bank = (addr % nb if interleaved
                                    else addr // bw)
                            base = dm_priority[bank]
                            winner = running[0].coreid
                            best = (winner - base) % ncores
                            for core in running:
                                key = (core.coreid - base) % ncores
                                if key < best:
                                    winner = core.coreid
                                    best = key
                            dm_priority[bank] = (winner + 1) % ncores
                            dm_reads += 1
                        else:
                            for core, out in zip(running, outs):
                                addr = out[j]
                                bank = (addr % nb if interleaved
                                        else addr // bw)
                                dm_priority[bank] = \
                                    (core.coreid + 1) % ncores
                            if is_write:
                                dm_writes += n
                            else:
                                dm_reads += n
                        dm_served += n
                    if memspec:
                        mem_blocks += 1
                        mem_ops += served_ops
                    if preds:
                        pred_blocks_l += 1
                        pred_cycles_l += length
                elif single is not None:
                    run(single)
                else:
                    for core in running:
                        run(core)
                term = blk[4]
                terms[term] = terms.get(term, 0) + 1
                cycles += length
                executed += length
                fused_blocks += 1
                fused_cycles += length
                if banks is not None:
                    banks.add(pc // bank_words)
                    banks.add((pc + length - 1) // bank_words)
                if end_kind == KIND_SEQ:
                    pc += blk[1]
                    continue
                pc = running[0].pc
                if end_kind == KIND_JUMP or single is not None:
                    continue
                diverged = False
                for core in running:
                    if core.pc != pc:
                        diverged = True
                        break
                if diverged:
                    break
                continue
            rec = decoded[pc]
            kind = rec[0]
            if kind <= BURSTABLE:
                run = rec[1]
                if single is not None:
                    run(single)
                else:
                    for core in running:
                        run(core)
                cycles += 1
                executed += 1
                if banks is not None:
                    banks.add(pc // bank_words)
                if kind == KIND_SEQ:
                    pc += 1
                else:
                    pc = running[0].pc
                    if kind != KIND_JUMP:     # divergent control flow
                        diverged = False
                        for core in running:
                            if core.pc != pc:
                                diverged = True
                                break
                        if diverged:
                            break
            elif kind == KIND_MEM and mem_ok:
                if not self._mem_cycle(running, rec[1]):
                    deopt = True      # possible conflict: slow path
                    break
                cycles += 1
                executed += 1
                if banks is not None:
                    banks.add(pc // bank_words)
                pc += 1
            elif kind == KIND_SYNC:
                # A lockstep SINC/SDEC merges into one two-cycle
                # checkpoint RMW (see :meth:`_lockstep_sync`).  The
                # *continuing* cases — a checkin, or a release that
                # wakes no sleeping core — are replayed inline so the
                # burst survives the barrier instead of tearing down
                # and re-probing.  Anything else (a checkout that puts
                # cores to sleep, a wake-latching release, a split or
                # locked or would-raise word, an event in the two-cycle
                # window) ends the burst cleanly; the next `_advance`
                # iteration routes it through `_lockstep_sync` /
                # ``step()`` untouched.
                sync = machine.synchronizer
                ins = rec[2]
                if sync is None or cycles + 2 > horizon:
                    break
                address = checkpoint_address(running[0], ins)
                ok = True
                if n > 1:
                    for core in running:
                        if checkpoint_address(core, ins) != address:
                            ok = False
                            break
                if (not ok or address >= len(words)
                        or address in dxbar.locked_addresses):
                    break
                is_checkout = ins.op is Opcode.SDEC
                flags, count = unpack_checkpoint(words[address])
                count_after = count + (-n if is_checkout else n)
                if count_after < 0 or count_after > ncores:
                    break         # protocol violation: step() raises
                released = is_checkout and count_after == 0
                if is_checkout and not released:
                    break         # the cores sleep: burst must end
                woken: tuple = ()
                if released:
                    woken = tuple(cid for cid in range(ncores)
                                  if flags & (1 << cid))
                    sleeper = False
                    cores_all = machine.cores
                    for cid in woken:
                        if cores_all[cid].mode is CoreMode.SLEEPING:
                            sleeper = True
                            break
                    if sleeper:
                        break     # wake latching: burst must end
                # -- cycle T: read phase -------------------------------
                checkpoint = sync.stats.get(address)
                if checkpoint is None:
                    checkpoint = sync.stats[address] = CheckpointStats()
                trace.dm_bank_reads += 1
                trace.sync_rmw_ops += 1
                checkpoint.rmws += 1
                # -- cycle T+1: write phase, retire --------------------
                trace.dm_bank_writes += 1
                coreids = tuple(core.coreid for core in running)
                if is_checkout:
                    checkins: tuple = ()
                    checkouts = coreids
                    trace.sync_checkouts += n
                    checkpoint.checkouts += n
                else:
                    for cid in coreids:
                        flags |= 1 << cid
                    checkins = coreids
                    checkouts = ()
                    trace.sync_checkins += n
                    checkpoint.checkins += n
                if count_after > checkpoint.max_counter:
                    checkpoint.max_counter = count_after
                if released:
                    words[address] = 0
                    trace.sync_wakeups += 1
                    checkpoint.wakeups += 1
                else:
                    words[address] = pack_checkpoint(flags, count_after)
                cycles += 2
                n_syncs += 1
                if banks is not None:
                    banks.add(pc // bank_words)
                for core in running:
                    core.pc = pc + 1
                if sync.listeners:
                    trace.cycles = cycles  # listeners see the real clock
                    completion = SyncCompletion(address, checkins,
                                                checkouts, woken,
                                                released, count_after)
                    for listener in sync.listeners:
                        listener(cycles, completion)
                pc += 1
            else:
                deopt = True          # mode change / unclassified
                break
        if deopt:
            self.stats.deopt_count += 1
        if not executed and not n_syncs:
            return False

        # Batched accounting — the per-cycle counters of `executed`
        # identical lockstep cycles plus `n_syncs` two-cycle checkpoint
        # RMWs, applied in one update.  Inline syncs change no core
        # mode (those cases end the burst), so one census covers the
        # whole burst.
        busy = executed + 2 * n_syncs
        fetched = executed + n_syncs
        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles
        trace.core_active_cycles += busy * n
        trace.retired_ops += fetched * n
        retired = trace.retired_per_core
        for core in running:
            retired[core.coreid] += fetched
        trace.im_bank_accesses += fetched
        trace.im_fetches_served += fetched * n
        histogram = trace.lockstep_histogram
        histogram[n] = histogram.get(n, 0) + fetched
        if halted:
            trace.core_halted_cycles += busy * halted
        if sleeping:
            trace.core_sleep_cycles += busy * sleeping
        if waiting:
            trace.sync_wait_cycles += busy * waiting
        if banks is not None:
            rotated = (single.coreid + 1) % machine.config.num_cores
            priority = machine.ixbar._priority
            for bank in banks:
                priority[bank] = rotated
        if dm_served:
            trace.dm_bank_reads += dm_reads
            trace.dm_bank_writes += dm_writes
            trace.dm_served += dm_served
        stats = self.stats
        stats.lockstep_bursts += 1
        stats.lockstep_cycles += busy
        stats.fused_blocks += fused_blocks
        stats.fused_cycles += fused_cycles
        stats.mem_fused_blocks += mem_blocks
        stats.mem_fused_ops += mem_ops
        stats.pred_blocks += pred_blocks_l
        stats.pred_cycles += pred_cycles_l
        stats.sync_fused_rmws += n_syncs
        for reason, count in terms.items():
            attr = "term_" + reason
            setattr(stats, attr, getattr(stats, attr) + count)
        machine._quiet = False
        return True

    def _mem_guard(self, memspec, outs, n: int, gates: tuple = (),
                   hp: int = 0) -> bool:
        """Verify the actual cross-core address pattern of a memory block.

        ``outs[c][j]`` is core ``c``'s effective address for fused op
        ``j``.  A uniform op must see one shared address (the broadcast
        read the block was compiled for); an affine op must see pairwise
        distinct banks (every core wins its private bank).  Anything
        else could lose D-Xbar arbitration, so the block is abandoned —
        the compile-time facts were hints, this is the proof.  Gated
        ops (inside a predicated arm, see ``FusedBlock.gates``) whose
        arm did not execute report sentinel addresses and are skipped.
        """
        config = self._machine.config
        interleaved = config.dm_interleaved
        nb = config.dm_banks
        bw = config.dm_bank_words
        for j, (uniform, _is_write) in enumerate(memspec):
            if gates and gates[j] and not hp & gates[j]:
                continue
            if uniform:
                addr = outs[0][j]
                for out in outs:
                    if out[j] != addr:
                        return False
            else:
                if interleaved:
                    banks = {out[j] % nb for out in outs}
                else:
                    banks = {out[j] // bw for out in outs}
                if len(banks) != n:
                    return False
        return True

    def _lockstep_sync(self, running: list, pc: int, ins,
                       limit: int) -> bool:
        """Replay one merged lockstep SINC/SDEC read-modify-write.

        When every running core executes the same checkpoint
        instruction through the broadcast I-Xbar, the reference
        collapses the requests into a *single* two-cycle RMW: broadcast
        fetch and synchronizer read phase in cycle T, write phase /
        retire / wake latching in cycle T+1.  Neither cycle touches
        anything but the checkpoint word, so both are replayed here in
        one batched update — in barrier-dense kernels these two-step
        windows are most of what ``step()`` is left with.

        Anything unusual defers to the reference untouched: a split
        checkpoint address (per-core ``Rsync``), a locked or
        out-of-range word, a protocol violation about to raise, a
        timer/IRQ event inside the window, or a missing synchronizer.

        :returns: True if the two cycles were consumed.
        """
        machine = self._machine
        sync = machine.synchronizer
        if sync is None:
            return False          # step() raises ExecutionError
        trace = machine.trace
        cycles = trace.cycles
        if cycles + 2 > min(limit, self._next_event_cycle() - 1):
            return False          # an event lands inside the window
        address = checkpoint_address(running[0], ins)
        for core in running:
            if checkpoint_address(core, ins) != address:
                return False      # split addresses: step() merges groups
        if address in machine.dxbar.locked_addresses:
            return False          # refused request: step() replays retry
        words = machine.dm.words
        if address >= len(words):
            return False          # step() raises MemoryError_
        n = len(running)
        config = machine.config
        is_checkout = ins.op is Opcode.SDEC
        flags, count = unpack_checkpoint(words[address])
        count_after = count + (-n if is_checkout else n)
        if count_after < 0 or count_after > config.num_cores:
            return False          # protocol violation: step() raises

        # -- cycle T: broadcast fetch + synchronizer read phase --------
        if n == 1 and not config.im_broadcast:
            # single requester through per-bank arbitration: it wins its
            # bank unconditionally, rotating the bank's priority
            bank = pc // config.im_bank_words
            machine.ixbar._priority[bank] = \
                (running[0].coreid + 1) % config.num_cores
        trace.im_bank_accesses += 1
        trace.im_fetches_served += n
        trace.note_lockstep(n)
        checkpoint = sync.stats.get(address)
        if checkpoint is None:
            checkpoint = sync.stats[address] = CheckpointStats()
        trace.dm_bank_reads += 1
        trace.sync_rmw_ops += 1
        checkpoint.rmws += 1

        # -- cycle T+1: write phase, retire, wake latching -------------
        trace.dm_bank_writes += 1
        coreids = tuple(core.coreid for core in running)
        if is_checkout:
            checkins: tuple = ()
            checkouts = coreids
            trace.sync_checkouts += n
            checkpoint.checkouts += n
        else:
            for cid in coreids:
                flags |= 1 << cid
            checkins = coreids
            checkouts = ()
            trace.sync_checkins += n
            checkpoint.checkins += n
        if count_after > checkpoint.max_counter:
            checkpoint.max_counter = count_after
        woken: tuple = ()
        released = False
        if count_after == 0 and is_checkout:
            # barrier release: wake every flagged core (latched to the
            # start of cycle T+2) and reinitialize the word
            woken = tuple(cid for cid in range(config.num_cores)
                          if flags & (1 << cid))
            words[address] = 0
            trace.sync_wakeups += 1
            checkpoint.wakeups += 1
            released = True
        else:
            words[address] = pack_checkpoint(flags, count_after)

        # Batched accounting of both cycles.  The idle census runs
        # before any mode change: a non-released checkout core is
        # *active* on its write cycle and only sleeps from T+2, and a
        # woken core stays a barrier sleeper through T+1.
        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles + 2
        trace.core_active_cycles += 2 * n
        trace.retired_ops += n
        retired = trace.retired_per_core
        for core in running:
            retired[core.coreid] += 1
            core.pc = pc + 1
        if halted:
            trace.core_halted_cycles += 2 * halted
        if sleeping:
            trace.core_sleep_cycles += 2 * sleeping
        if waiting:
            trace.sync_wait_cycles += 2 * waiting
        if is_checkout and not released:
            barrier_sleeper = machine._barrier_sleeper
            for core in running:
                core.mode = CoreMode.SLEEPING
                barrier_sleeper[core.coreid] = True
        if woken:
            cores = machine.cores
            wake_next = machine._wake_next
            for cid in woken:
                if cores[cid].mode is CoreMode.SLEEPING:
                    wake_next.add(cid)
        if sync.listeners:
            completion = SyncCompletion(address, checkins, checkouts,
                                        woken, released, count_after)
            for listener in sync.listeners:
                listener(trace.cycles, completion)
        stats = self.stats
        stats.lockstep_cycles += 2
        stats.sync_fused_rmws += 1
        machine._quiet = False
        return True

    def _divergent_burst(self, running: list, limit: int) -> bool:
        """Serialize divergent running cores through I-Xbar arbitration.

        Replays, cycle for cycle, what the reference does when running
        cores request *different* addresses in one IM bank (or IM
        broadcast is disabled): the bank's rotating priority picks one
        winner, the broadcast group sharing the winner's address (just
        the winner without broadcast) fetches and executes, everyone
        else stalls, and the priority rotates past the winner.  Memory
        winners are served inline through :meth:`_mem_cycle`.

        Deopts to ``step()`` — committing nothing for that cycle — when
        the winner would stop/sync/fault, when a served memory pattern
        may lose D-Xbar arbitration, and for the (never exercised by
        the bundled kernels) multi-bank divergence case.  Exits cleanly
        at the horizon or when broadcast cores re-converge, handing
        back to the lockstep burst.

        :returns: True if at least one cycle was consumed.
        """
        machine = self._machine
        trace = machine.trace
        decoded = machine._decoded
        config = machine.config
        im_len = len(decoded)
        horizon = min(limit, self._next_event_cycle() - 1)
        cycles = trace.cycles
        if cycles >= horizon:
            return False
        bank_words = config.im_bank_words
        bank = running[0].pc // bank_words
        for core in running:
            if core.pc // bank_words != bank:
                self.stats.deopt_count += 1
                return False
        dxbar = machine.dxbar
        mem_ok = not (dxbar.locked_addresses or dxbar._groups)
        broadcast = config.im_broadcast
        ncores = config.num_cores
        priority = machine.ixbar._priority
        n = len(running)
        executed = 0
        served_total = 0
        conflicts = 0
        histogram: dict[int, int] = {}
        retired: dict[int, int] = {}
        deopt = False
        while cycles < horizon:
            start = priority[bank]
            winner = running[0]
            best = (winner.coreid - start) % ncores
            for core in running:
                key = (core.coreid - start) % ncores
                if key < best:
                    winner = core
                    best = key
            wpc = winner.pc
            if wpc >= im_len:
                deopt = True          # let step() raise the fetch error
                break
            if broadcast:
                served = [c for c in running if c.pc == wpc]
                if len(served) == n:
                    break             # converged: lockstep burst's regime
            else:
                served = [winner]
            rec = decoded[wpc]
            kind = rec[0]
            if kind <= BURSTABLE:
                run = rec[1]
                for core in served:
                    run(core)
            elif kind == KIND_MEM and mem_ok:
                if not self._mem_cycle(served, rec[1]):
                    deopt = True      # possible D-Xbar conflict
                    break
            else:
                deopt = True          # synchronizer / mode change
                break
            # Commit this cycle's arbitration bookkeeping (all guard
            # checks passed — nothing above mutated state before here
            # except the instruction effects themselves).
            priority[bank] = (winner.coreid + 1) % ncores
            ns = len(served)
            served_total += ns
            if ns < n:
                conflicts += 1
            histogram[ns] = histogram.get(ns, 0) + 1
            for core in served:
                cid = core.coreid
                retired[cid] = retired.get(cid, 0) + 1
            cycles += 1
            executed += 1
            moved = False
            for core in served:
                if core.pc // bank_words != bank:
                    moved = True
                    break
            if moved:
                break                 # next fetch is in another bank
        if deopt:
            self.stats.deopt_count += 1
        if not executed:
            return False

        halted, sleeping, waiting = self._idle_census()
        trace.cycles = cycles
        trace.core_active_cycles += served_total
        trace.core_stall_cycles += executed * n - served_total
        trace.retired_ops += served_total
        retired_per_core = trace.retired_per_core
        for cid, count in retired.items():
            retired_per_core[cid] += count
        trace.im_bank_accesses += executed
        trace.im_fetches_served += served_total
        trace.im_conflict_cycles += conflicts
        trace_histogram = trace.lockstep_histogram
        for size, count in histogram.items():
            trace_histogram[size] = trace_histogram.get(size, 0) + count
        if halted:
            trace.core_halted_cycles += executed * halted
        if sleeping:
            trace.core_sleep_cycles += executed * sleeping
        if waiting:
            trace.sync_wait_cycles += executed * waiting
        self.stats.divergent_bursts += 1
        self.stats.divergent_cycles += executed
        machine._quiet = False
        return True

    def _mem_cycle(self, running: list, info: tuple) -> bool:
        """Serve one lockstep LD/ST cycle inline when it provably wins.

        Handles the two request patterns that cannot lose D-Xbar
        arbitration: every core hitting a distinct bank (the SPMD
        private-buffer pattern) and every core reading one shared
        address (one broadcast bank read serves all).  Reproduces the
        counter updates, round-robin priority rotation and serve order
        of ``DataCrossbar._serve_bank`` exactly.  Returns False —
        leaving all state untouched — on any other pattern (or any
        out-of-range address), so the reference ``step()`` arbitrates
        the conflict or raises the fault.
        """
        machine = self._machine
        config = machine.config
        is_write, rs, imm, rd = info
        words = machine.dm.words
        addrs = [(core.regs[rs] + imm) & 0xFFFF for core in running]
        if max(addrs) >= len(words):
            return False    # out of range: let the reference step fault
        if config.dm_interleaved:
            nb = config.dm_banks
            bankl = [addr % nb for addr in addrs]
        else:
            bank_words = config.dm_bank_words
            bankl = [addr // bank_words for addr in addrs]

        n = len(running)
        trace = machine.trace
        priority = machine.dxbar._priority
        ncores = config.num_cores
        if len(set(bankl)) != n:
            if is_write or not config.dm_broadcast:
                return False
            addr = addrs[0]
            for other in addrs:
                if other != addr:
                    return False
            bank = bankl[0]
            winner = min((core.coreid for core in running),
                         key=lambda cid: (cid - priority[bank]) % ncores)
            priority[bank] = (winner + 1) % ncores
            value = words[addr]
            trace.dm_bank_reads += 1
            for core in running:
                core.regs[rd] = value
                core.pc += 1
            trace.dm_served += n
            return True
        if is_write:
            for core, addr, bank in zip(running, addrs, bankl):
                priority[bank] = (core.coreid + 1) % ncores
                words[addr] = core.regs[rd] & 0xFFFF
                core.pc += 1
            trace.dm_bank_writes += n
        else:
            for core, addr, bank in zip(running, addrs, bankl):
                priority[bank] = (core.coreid + 1) % ncores
                core.regs[rd] = words[addr]
                core.pc += 1
            trace.dm_bank_reads += n
        trace.dm_served += n
        return True

    def _sleep_fast_forward(self, limit: int) -> bool:
        """Jump over an all-asleep stretch to the next timer/IRQ event.

        Only taken when the platform is fully event-driven: no core runs,
        nothing is in flight, and no pending interrupt is deliverable —
        so *nothing* can change until the next timer fire or scheduled
        interrupt.  Credits every skipped cycle's sleep/halt (and barrier
        wait) counters in bulk.

        :returns: True if at least one cycle was skipped.
        """
        machine = self._machine
        if machine._pending_irq_count:
            # A deliverable pending IRQ changes state on the very next
            # cycle; leave it to the reference step().  Undeliverable
            # ones (masked, halted, checked out at a barrier) stay
            # pending for the whole sleep period.
            for cid, pending in enumerate(machine._pending_irq):
                if not pending:
                    continue
                core = machine.cores[cid]
                if (core.interrupts_enabled
                        and core.mode is not CoreMode.HALTED
                        and not machine._barrier_sleeper[cid]):
                    return False
        next_event = self._next_event_cycle()
        if next_event == INFINITY:
            return False              # deadlock or halt: step() decides
        trace = machine.trace
        target = min(limit, next_event - 1)
        skipped = target - trace.cycles
        if skipped <= 0:
            return False
        halted, sleeping, waiting = self._idle_census()
        if not sleeping:
            return False              # fully halted: run loop terminates
        trace.cycles = target
        trace.core_sleep_cycles += skipped * sleeping
        if halted:
            trace.core_halted_cycles += skipped * halted
        if waiting:
            trace.sync_wait_cycles += skipped * waiting
        self.stats.sleep_skips += 1
        self.stats.sleep_cycles += skipped
        machine._quiet = True
        return True
