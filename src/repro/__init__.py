"""repro — reproduction of Dogan et al., "Synchronizing Code Execution on
Ultra-Low-Power Embedded Multi-Channel Signal Analysis Platforms" (DATE 2013).

The package provides, from the bottom up:

- :mod:`repro.isa` — the ``ulp16`` 16-bit RISC ISA with the paper's
  ``SINC``/``SDEC`` synchronization instruction-set extension, plus an
  assembler/disassembler.
- :mod:`repro.cpu` — the single-core execution model (ALU, flags, sleep,
  interrupts).
- :mod:`repro.platform` — the cycle-level 8-core platform: banked IM/DM,
  broadcast-capable instruction/data crossbars, clock gating and the
  hardware synchronizer that is the paper's central contribution.
- :mod:`repro.sync` — the software side of the synchronization technique
  (checkpoint array layout, instrumentation, policy ablations).
- :mod:`repro.compiler` — ``minic``, a small C-like compiler targeting
  ``ulp16`` with automatic synchronization-point insertion.
- :mod:`repro.dsp` — golden biosignal models (morphological filtering and
  delineation, integer square root) and a synthetic multi-channel ECG
  generator.
- :mod:`repro.kernels` — the paper's three benchmarks (MRPFLTR, MRPDLN,
  SQRT32) as platform programs.
- :mod:`repro.power` — activity-based power model with voltage/frequency
  scaling, calibrated against the paper's Table I and Fig. 3.
- :mod:`repro.analysis` — experiment runners and report formatters for every
  table and figure in the paper.
"""

__version__ = "1.0.0"

from . import isa  # noqa: F401  (re-exported subpackage)

# The package's working surface, re-exported for `import repro` users.
from .compiler import CompileResult, compile_source
from .dsp import EcgConfig, generate_ecg
from .kernels import (
    BENCHMARKS,
    DESIGNS,
    WITH_SYNC,
    WITHOUT_SYNC,
    golden_outputs,
    run_benchmark,
)
from .platform import (
    FunctionalSimulator,
    Machine,
    PlatformConfig,
    SyncPolicy,
    WITH_SYNCHRONIZER,
    WITHOUT_SYNCHRONIZER,
)
from .power import default_energy_model, default_voltage_model

__all__ = [
    "BENCHMARKS",
    "CompileResult",
    "DESIGNS",
    "EcgConfig",
    "FunctionalSimulator",
    "Machine",
    "PlatformConfig",
    "SyncPolicy",
    "WITH_SYNC",
    "WITHOUT_SYNC",
    "WITH_SYNCHRONIZER",
    "WITHOUT_SYNCHRONIZER",
    "__version__",
    "compile_source",
    "default_energy_model",
    "default_voltage_model",
    "generate_ecg",
    "golden_outputs",
    "isa",
    "run_benchmark",
]
