"""Two-pass assembler for the ``ulp16`` ISA.

Supported syntax::

    ; comment              // comment
    label:                 ; binds to the current code or data address
    .equ NAME expr         ; assembler constant (must precede use)
    .entry label           ; program entry point (default: address 0)
    .org addr              ; set the code origin
    .data addr             ; switch to data emission at DM address `addr`
    .code                  ; switch back to code emission
    .word e0, e1, ...      ; emit initialized data words
    .space n               ; reserve n zero-initialized data words

    ADD R0, R1, R2         ; R-type
    ADDI R0, R1, #-3       ; immediates accept '#' or bare expressions
    LD  R0, [R1 + #2]      ; memory operands, offset optional
    ST  R0, [R1]
    BEQ label              ; short conditional branch (pc-relative, 8 bit)
    LBNE label             ; long branch pseudo: inverted Bcc over a JMP
    JMP label              ; absolute jump
    LI  R0, #0x1234        ; load-immediate pseudo (LDI or LUI+ORI)
    RET / NEG / NOT / INC / DEC / CLR  ; other pseudos

Expressions support decimal/hex/binary literals, symbols, unary minus,
``+``/``-``/``*`` and ``lo(expr)`` / ``hi(expr)`` byte extraction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .instruction import Instruction
from .program import DataBlock, Program
from .spec import (
    Cond,
    Opcode,
    ShiftOp,
    SysOp,
    SpecialReg,
    IMM8_MIN,
    IMM8_MAX,
    NUM_GPRS,
    REG_ALIASES,
    to_unsigned16,
)


class AssemblyError(ValueError):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
#: access-shape marker on LD/ST lines (emitted by the minic compiler or
#: hand-written assembly): ``;@mem=U`` claims a core-uniform effective
#: address, ``;@mem=A<k>`` a coreid-affine address with stride ``k``
_MEM_MARKER_RE = re.compile(r";@mem=(?:(U)\b|A(\d+))")
#: marker the compiler appends to branches it generated for ``if``
#: statements — a hint (not a requirement) for the hammock analysis
_IFCONV_MARKER = ";@ifconv"
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)"
    r"|(?P<sym>[A-Za-z_.$][\w.$]*)"
    r"|(?P<punct>[#,\[\]()+\-*]))"
)

_COND_MNEMONICS = {f"B{c.name}": c for c in Cond}
_LONG_COND_MNEMONICS = {f"LB{c.name}": c for c in Cond}
_COND_INVERSE = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.LE: Cond.GT, Cond.GT: Cond.LE,
    Cond.LTU: Cond.GEU, Cond.GEU: Cond.LTU,
}

_R3_MNEMONICS = {
    "ADD": Opcode.ADD, "SUB": Opcode.SUB, "AND": Opcode.AND,
    "OR": Opcode.OR, "XOR": Opcode.XOR, "ADC": Opcode.ADC,
    "SBC": Opcode.SBC, "MUL": Opcode.MUL, "MULH": Opcode.MULH,
    "SLL": Opcode.SLL, "SRL": Opcode.SRL, "SRA": Opcode.SRA,
}
_SHIFT_MNEMONICS = {
    "SLLI": ShiftOp.SLLI, "SRLI": ShiftOp.SRLI, "SRAI": ShiftOp.SRAI,
}
_SYS_MNEMONICS = {s.name: s for s in SysOp}
_SREG_NAMES = {s.name: int(s) for s in SpecialReg}


@dataclass
class _Item:
    """One statement scheduled for emission in pass 2."""

    kind: str                 # 'ins' | 'li' | 'lb' | 'branch'
    mnemonic: str
    operands: list[list[tuple[str, str]]]
    line: int
    address: int = 0
    size: int = 1
    #: ``;@mem=`` access-shape fact for LD/ST (0 = uniform, k = stride)
    mem_stride: int | None = None
    #: ``;@ifconv`` hint on a conditional branch: the compiler asserts
    #: this is an ``if`` statement's branch, so the hammock analysis may
    #: use its larger arm budget here
    ifconv: bool = False


@dataclass
class Assembler:
    """Two-pass assembler producing :class:`~repro.isa.program.Program`."""

    symbols: dict[str, int] = field(default_factory=dict)

    def assemble(self, source: str, *, origin: int = 0) -> Program:
        """Assemble ``source`` into a program image."""
        self._equates: dict[str, int] = {}
        self._labels: dict[str, int] = dict(self.symbols)
        items: list[_Item] = []
        data_blocks: list[tuple[int, list[object]]] = []
        entry_symbol: str | None = None

        mode = "code"
        code_addr = origin
        data_addr = 0
        current_block: tuple[int, list[object]] | None = None

        def flush_block() -> None:
            nonlocal current_block
            if current_block is not None and current_block[1]:
                data_blocks.append(current_block)
            current_block = None

        for lineno, raw in enumerate(source.splitlines(), start=1):
            mem_stride = _parse_mem_marker(raw)
            line = _strip_comment(raw).strip()
            while True:
                m = _LABEL_RE.match(line)
                if not m:
                    break
                name = m.group(1)
                if name in self._labels or name in self._equates:
                    raise AssemblyError(f"duplicate symbol {name!r}", lineno)
                self._labels[name] = code_addr if mode == "code" else data_addr
                line = line[m.end():].strip()
            if not line:
                continue

            head, _, rest = line.partition(" ")
            head_up = head.upper()

            if head_up == ".EQU":
                name, expr = _split_equ(rest, lineno)
                self._equates[name] = self._eval_const(expr, lineno)
                continue
            if head_up == ".ENTRY":
                entry_symbol = rest.strip()
                continue
            if head_up == ".ORG":
                code_addr = self._eval_const(rest, lineno)
                mode = "code"
                continue
            if head_up == ".DATA":
                flush_block()
                data_addr = self._eval_const(rest, lineno)
                current_block = (data_addr, [])
                mode = "data"
                continue
            if head_up == ".CODE":
                flush_block()
                mode = "code"
                continue
            if head_up == ".WORD":
                if mode != "data":
                    raise AssemblyError(".word outside .data section", lineno)
                assert current_block is not None
                for part in _split_operands(rest):
                    current_block[1].append((part, lineno))
                    data_addr += 1
                continue
            if head_up == ".SPACE":
                if mode != "data":
                    raise AssemblyError(".space outside .data section", lineno)
                assert current_block is not None
                count = self._eval_const(rest, lineno)
                current_block[1].extend([0] * count)
                data_addr += count
                continue
            if head_up.startswith("."):
                raise AssemblyError(f"unknown directive {head}", lineno)

            if mode != "code":
                raise AssemblyError("instruction inside .data section", lineno)
            item = self._parse_statement(head_up, rest, lineno)
            item.address = code_addr
            if mem_stride is not None and head_up in ("LD", "ST"):
                item.mem_stride = mem_stride
            if _IFCONV_MARKER in raw:
                item.ifconv = True
            code_addr += item.size
            items.append(item)

        flush_block()

        # Pass 2: resolve symbols and emit.
        program = Program()
        program.symbols = dict(self._labels)
        program.symbols.update(self._equates)
        for item in items:
            for ins in self._emit(item):
                if len(program.instructions) < item.address:
                    pad = item.address - len(program.instructions)
                    program.instructions.extend([Instruction(Opcode.SYS)] * pad)
                program.instructions.append(ins)
                program.source_map[len(program.instructions) - 1] = (
                    f"{item.mnemonic} (line {item.line})")
            if item.mem_stride is not None:
                # LD/ST items are always one instruction at item.address
                program.mem_facts[item.address] = item.mem_stride
        for base, entries in data_blocks:
            values = []
            for entry in entries:
                if isinstance(entry, int):
                    values.append(entry)
                else:
                    expr, lineno = entry
                    values.append(to_unsigned16(self._eval(expr, lineno)))
            program.data.append(DataBlock(base, tuple(values)))
        if entry_symbol is not None:
            if entry_symbol not in program.symbols:
                raise AssemblyError(f"unknown entry symbol {entry_symbol!r}")
            program.entry = program.symbols[entry_symbol]

        # Stamp if-conversion facts onto the image (deferred import: the
        # compiler package imports this module at load time).
        from ..compiler.ifconv import find_hammocks

        hints = {item.address for item in items if item.ifconv}
        program.hammocks = find_hammocks(program, hints=hints)
        return program

    # ------------------------------------------------------------------
    # Parsing helpers
    # ------------------------------------------------------------------

    def _parse_statement(self, mnemonic: str, rest: str, line: int) -> _Item:
        operands = [_tokenize(part, line) for part in _split_operands(rest)]
        if mnemonic == "LI":
            if len(operands) != 2:
                raise AssemblyError("LI needs register, immediate", line)
            size = self._li_size(operands[1], line)
            return _Item("li", mnemonic, operands, line, size=size)
        if mnemonic in _LONG_COND_MNEMONICS:
            return _Item("lb", mnemonic, operands, line, size=2)
        return _Item("ins", mnemonic, operands, line, size=1)

    def _li_size(self, tokens: list[tuple[str, str]], line: int) -> int:
        """LI is 1 instruction iff the value is a known simm8 constant."""
        try:
            value = self._eval_tokens(tokens, line, allow_labels=False)
        except AssemblyError:
            return 2
        return 1 if IMM8_MIN <= value <= IMM8_MAX else 2

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, item: _Item) -> list[Instruction]:
        m, ops, line = item.mnemonic, item.operands, item.line

        if item.kind == "li":
            rd = self._reg(ops[0], line)
            value = self._eval_tokens(ops[1], line)
            svalue = to_unsigned16(value)
            if item.size == 1:
                return [Instruction(Opcode.LDI, rd=rd,
                                    imm=_as_simm8(svalue))]
            out = [Instruction(Opcode.LUI, rd=rd, imm=svalue >> 8)]
            if svalue & 0xFF:
                out.append(Instruction(Opcode.ORI, rd=rd, imm=svalue & 0xFF))
            else:
                out.append(Instruction(Opcode.SYS))  # keep sizes stable
            return out

        if item.kind == "lb":
            cond = _LONG_COND_MNEMONICS[m]
            target = self._eval_tokens(ops[0], line)
            return [
                Instruction(Opcode.BCC, cond=_COND_INVERSE[cond], imm=1),
                Instruction(Opcode.JMP, imm=target),
            ]

        if m in _SYS_MNEMONICS:
            if ops:
                raise AssemblyError(f"{m} takes no operands", line)
            return [Instruction(Opcode.SYS, sub=_SYS_MNEMONICS[m])]

        if m in _R3_MNEMONICS:
            rd, rs, rt = (self._reg(o, line) for o in self._arity(ops, 3, m, line))
            return [Instruction(_R3_MNEMONICS[m], rd=rd, rs=rs, rt=rt)]

        if m in ("MOV", "CMP"):
            a, b = self._arity(ops, 2, m, line)
            return [Instruction(Opcode[m], rd=self._reg(a, line),
                                rs=self._reg(b, line))]

        if m in ("NEG", "NOT"):
            a, b = self._arity(ops, 2, m, line)
            rd, rs = self._reg(a, line), self._reg(b, line)
            if rd == rs:
                raise AssemblyError(f"{m} pseudo requires rd != rs", line)
            seed = 0 if m == "NEG" else -1
            op = Opcode.SUB if m == "NEG" else Opcode.XOR
            return [Instruction(Opcode.LDI, rd=rd, imm=seed),
                    Instruction(op, rd=rd, rs=rd, rt=rs)]

        if m in ("INC", "DEC"):
            (a,) = self._arity(ops, 1, m, line)
            rd = self._reg(a, line)
            delta = 1 if m == "INC" else -1
            return [Instruction(Opcode.ADDI, rd=rd, rs=rd, imm=delta)]

        if m == "CLR":
            (a,) = self._arity(ops, 1, m, line)
            return [Instruction(Opcode.LDI, rd=self._reg(a, line), imm=0)]

        if m == "RET":
            if ops:
                raise AssemblyError("RET takes no operands", line)
            return [Instruction(Opcode.JR, rs=7)]

        if m == "ADDI":
            a, b, c = self._arity(ops, 3, m, line)
            return [Instruction(Opcode.ADDI, rd=self._reg(a, line),
                                rs=self._reg(b, line),
                                imm=self._eval_tokens(c, line))]

        if m in ("LDI", "LUI", "ORI"):
            a, b = self._arity(ops, 2, m, line)
            return [Instruction(Opcode[m], rd=self._reg(a, line),
                                imm=self._eval_tokens(b, line))]

        if m == "CMPI":
            a, b = self._arity(ops, 2, m, line)
            return [Instruction(Opcode.CMPI, rd=self._reg(a, line),
                                imm=self._eval_tokens(b, line))]

        if m in _SHIFT_MNEMONICS:
            a, b = self._arity(ops, 2, m, line)
            return [Instruction(Opcode.SHI, rd=self._reg(a, line),
                                sub=_SHIFT_MNEMONICS[m],
                                imm=self._eval_tokens(b, line))]

        if m in ("LD", "ST"):
            a, b = self._arity(ops, 2, m, line)
            base, offset = self._mem_operand(b, line)
            return [Instruction(Opcode[m], rd=self._reg(a, line),
                                rs=base, imm=offset)]

        if m in ("MFSR", "MTSR"):
            a, b = self._arity(ops, 2, m, line)
            if m == "MFSR":
                return [Instruction(Opcode.MFSR, rd=self._reg(a, line),
                                    imm=self._sreg(b, line))]
            return [Instruction(Opcode.MTSR, imm=self._sreg(a, line),
                                rs=self._reg(b, line))]

        if m in _COND_MNEMONICS:
            (a,) = self._arity(ops, 1, m, line)
            target = self._eval_tokens(a, line)
            disp = target - (item.address + 1)
            if not IMM8_MIN <= disp <= IMM8_MAX:
                raise AssemblyError(
                    f"branch to {target} out of range from {item.address}"
                    f" (use L{m})", line)
            return [Instruction(Opcode.BCC, cond=_COND_MNEMONICS[m], imm=disp)]

        if m in ("JMP", "CALL", "BR"):
            (a,) = self._arity(ops, 1, m, line)
            op = Opcode.JMP if m == "BR" else Opcode[m]
            return [Instruction(op, imm=self._eval_tokens(a, line))]

        if m in ("JR", "CALLR"):
            (a,) = self._arity(ops, 1, m, line)
            return [Instruction(Opcode[m], rs=self._reg(a, line))]

        if m in ("SINC", "SDEC"):
            (a,) = self._arity(ops, 1, m, line)
            return [Instruction(Opcode[m], imm=self._eval_tokens(a, line))]

        raise AssemblyError(f"unknown mnemonic {m!r}", line)

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _arity(ops, count: int, mnemonic: str, line: int):
        if len(ops) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operand(s), got {len(ops)}", line)
        return ops

    @staticmethod
    def _reg(tokens: list[tuple[str, str]], line: int) -> int:
        if len(tokens) != 1 or tokens[0][0] != "sym":
            raise AssemblyError(f"expected register, got {tokens!r}", line)
        name = tokens[0][1].upper()
        if name in REG_ALIASES:
            return REG_ALIASES[name]
        if re.fullmatch(r"R[0-7]", name):
            return int(name[1])
        raise AssemblyError(f"unknown register {name!r}", line)

    @staticmethod
    def _sreg(tokens: list[tuple[str, str]], line: int) -> int:
        toks = [t for t in tokens if t != ("punct", "#")]
        if len(toks) == 1 and toks[0][0] == "sym":
            name = toks[0][1].upper()
            if name in _SREG_NAMES:
                return _SREG_NAMES[name]
        if len(toks) == 1 and toks[0][0] == "num":
            return _parse_num(toks[0][1])
        raise AssemblyError(f"expected special register, got {tokens!r}", line)

    def _mem_operand(self, tokens: list[tuple[str, str]], line: int):
        """Parse ``[Rbase + #offset]`` / ``[Rbase]``."""
        if not tokens or tokens[0] != ("punct", "[") or tokens[-1] != ("punct", "]"):
            raise AssemblyError("expected memory operand [Rn + #off]", line)
        inner = tokens[1:-1]
        if not inner or inner[0][0] != "sym":
            raise AssemblyError("memory operand must start with a register", line)
        base = self._reg([inner[0]], line)
        rest = inner[1:]
        if not rest:
            return base, 0
        if rest[0] == ("punct", "+"):
            rest = rest[1:]
        return base, self._eval_tokens(rest, line)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _eval_const(self, text: str, line: int) -> int:
        return self._eval_tokens(_tokenize(text, line), line, allow_labels=False)

    def _eval(self, text: str, line: int) -> int:
        return self._eval_tokens(_tokenize(text, line), line)

    def _eval_tokens(self, tokens: list[tuple[str, str]], line: int,
                     *, allow_labels: bool = True) -> int:
        parser = _ExprParser(tokens, self._equates,
                             self._labels if allow_labels else {}, line)
        value = parser.parse()
        parser.expect_end()
        return value


class _ExprParser:
    """Tiny precedence-free expression parser: term ((+|-|*) term)*."""

    def __init__(self, tokens, equates, labels, line):
        self.tokens = [t for t in tokens if t != ("punct", "#")]
        self.pos = 0
        self.equates = equates
        self.labels = labels
        self.line = line

    def parse(self) -> int:
        value = self._muldiv()
        while self._peek() in (("punct", "+"), ("punct", "-")):
            op = self._next()[1]
            rhs = self._muldiv()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _muldiv(self) -> int:
        value = self._term()
        while self._peek() == ("punct", "*"):
            self._next()
            value *= self._term()
        return value

    def _term(self) -> int:
        tok = self._next()
        if tok is None:
            raise AssemblyError("unexpected end of expression", self.line)
        kind, text = tok
        if tok == ("punct", "-"):
            return -self._term()
        if tok == ("punct", "("):
            value = self.parse()
            if self._next() != ("punct", ")"):
                raise AssemblyError("missing ')'", self.line)
            return value
        if kind == "num":
            return _parse_num(text)
        if kind == "sym":
            lowered = text.lower()
            if lowered in ("lo", "hi") and self._peek() == ("punct", "("):
                self._next()
                value = self.parse()
                if self._next() != ("punct", ")"):
                    raise AssemblyError("missing ')'", self.line)
                return value & 0xFF if lowered == "lo" else (value >> 8) & 0xFF
            if text in self.equates:
                return self.equates[text]
            if text in self.labels:
                return self.labels[text]
            raise AssemblyError(f"undefined symbol {text!r}", self.line)
        raise AssemblyError(f"unexpected token {text!r}", self.line)

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        tok = self._peek()
        if tok is not None:
            self.pos += 1
        return tok

    def expect_end(self) -> None:
        if self.pos != len(self.tokens):
            raise AssemblyError(
                f"trailing tokens {self.tokens[self.pos:]!r}", self.line)


def _split_equ(rest: str, line: int) -> tuple[str, str]:
    name, _, expr = rest.strip().partition(" ")
    if not name or not expr.strip():
        raise AssemblyError(".equ needs a name and a value", line)
    return name, expr.strip()


def _parse_mem_marker(raw: str) -> int | None:
    """Extract a ``;@mem=`` access-shape fact from a raw source line."""
    m = _MEM_MARKER_RE.search(raw)
    if not m:
        return None
    if m.group(1):
        return 0
    return int(m.group(2)) & 0xFFFF


def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _split_operands(text: str) -> list[str]:
    text = text.strip()
    if not text:
        return []
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    parts.append("".join(current).strip())
    return [p for p in parts if p]


def _tokenize(text: str, line: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            raise AssemblyError(f"bad token at {text[pos:]!r}", line)
        pos = m.end()
        for kind in ("num", "sym", "punct"):
            value = m.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def _parse_num(text: str) -> int:
    return int(text, 0)


def _as_simm8(value16: int) -> int:
    """Reinterpret an unsigned 16-bit value as the simm8 that produces it."""
    return value16 - 0x10000 if value16 >= 0xFF80 else value16


def assemble(source: str, **kwargs) -> Program:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler().assemble(source, **kwargs)
