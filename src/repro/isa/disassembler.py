"""Disassembler for ``ulp16`` binary images and instruction streams."""

from __future__ import annotations

from collections.abc import Iterable

from .encoding import decode
from .instruction import Instruction, format_instruction


def disassemble_word(word: int) -> str:
    """Disassemble a single 16-bit instruction word."""
    return format_instruction(decode(word))


def disassemble(words: Iterable[int], *, base: int = 0) -> str:
    """Disassemble a sequence of instruction words into a listing."""
    lines = []
    for offset, word in enumerate(words):
        lines.append(f"{base + offset:5d}:  {word:04x}  {disassemble_word(word)}")
    return "\n".join(lines)


def disassemble_instructions(instructions: Iterable[Instruction],
                             *, base: int = 0) -> str:
    """Render already-decoded instructions as a listing."""
    return "\n".join(
        f"{base + offset:5d}:  {format_instruction(ins)}"
        for offset, ins in enumerate(instructions)
    )
