"""Decoded-instruction representation shared by the whole toolchain.

The simulator executes :class:`Instruction` objects directly (the binary
image is decoded once at load time), so this class is deliberately a small,
immutable record with cheap attribute access.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import (
    Cond,
    Opcode,
    ShiftOp,
    SysOp,
    R2_OPCODES,
    R3_OPCODES,
    I5_OPCODES,
    I8_OPCODES,
    J_OPCODES,
    SYNC_OPCODES,
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded ``ulp16`` instruction.

    Fields that an opcode does not use are left at their defaults; the
    encoder zeroes them in the binary form.

    :param op: primary opcode.
    :param rd: destination register (or SYS sub-op / branch condition slot).
    :param rs: first source register.
    :param rt: second source register.
    :param imm: immediate operand, already sign-interpreted where relevant.
    :param sub: sub-operation for ``SYS``/``SHI`` (``SysOp``/``ShiftOp``).
    :param cond: branch condition for ``BCC``.
    """

    op: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    sub: int = 0
    cond: Cond = Cond.EQ

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_instruction(self)


def format_instruction(ins: Instruction) -> str:
    """Render an :class:`Instruction` in assembler syntax."""
    op = ins.op
    if op is Opcode.SYS:
        return SysOp(ins.sub).name
    if op in R3_OPCODES:
        return f"{op.name} R{ins.rd}, R{ins.rs}, R{ins.rt}"
    if op is Opcode.MOV:
        return f"MOV R{ins.rd}, R{ins.rs}"
    if op is Opcode.CMP:
        return f"CMP R{ins.rd}, R{ins.rs}"
    if op is Opcode.MFSR:
        return f"MFSR R{ins.rd}, #{ins.imm}"
    if op is Opcode.MTSR:
        return f"MTSR #{ins.imm}, R{ins.rs}"
    if op is Opcode.ADDI:
        return f"ADDI R{ins.rd}, R{ins.rs}, #{ins.imm}"
    if op in I8_OPCODES:
        return f"{op.name} R{ins.rd}, #{ins.imm}"
    if op is Opcode.CMPI:
        return f"CMPI R{ins.rd}, #{ins.imm}"
    if op is Opcode.SHI:
        return f"{ShiftOp(ins.sub).name} R{ins.rd}, #{ins.imm}"
    if op is Opcode.LD:
        return f"LD R{ins.rd}, [R{ins.rs} + #{ins.imm}]"
    if op is Opcode.ST:
        return f"ST R{ins.rd}, [R{ins.rs} + #{ins.imm}]"
    if op is Opcode.BCC:
        return f"B{ins.cond.name} #{ins.imm}"
    if op in J_OPCODES:
        return f"{op.name} #{ins.imm}"
    if op is Opcode.JR:
        return f"JR R{ins.rs}"
    if op is Opcode.CALLR:
        return f"CALLR R{ins.rs}"
    if op in SYNC_OPCODES:
        return f"{op.name} #{ins.imm}"
    raise ValueError(f"unformattable instruction {ins!r}")


# Convenience constructors keep call sites (builder DSL, tests) terse.

def sys(sub: SysOp) -> Instruction:
    return Instruction(Opcode.SYS, sub=int(sub))


NOP = sys(SysOp.NOP)
HALT = sys(SysOp.HALT)
SLEEP = sys(SysOp.SLEEP)
RETI = sys(SysOp.RETI)
EI = sys(SysOp.EI)
DI = sys(SysOp.DI)
