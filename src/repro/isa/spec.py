"""Architectural constants of the ``ulp16`` instruction set.

``ulp16`` models the custom 16-bit RISC core used by the target platform of
Dogan et al. (DATE 2013): a small load/store machine with eight general
purpose registers, condition flags, sleep/interrupt support and the paper's
synchronization instruction-set extension (``SINC``/``SDEC`` plus the
``RSYNC`` base register and the atomic *lock* output).

Everything here is a plain constant or enum so that the encoder, assembler,
disassembler and simulator all agree on a single source of truth.
"""

from __future__ import annotations

import enum

# ---------------------------------------------------------------------------
# Data widths and register file
# ---------------------------------------------------------------------------

WORD_BITS = 16
WORD_MASK = 0xFFFF
WORD_MIN = -0x8000
WORD_MAX = 0x7FFF

NUM_GPRS = 8

#: ABI register conventions (hardware only fixes LR, which ``CALL`` writes).
REG_RV = 0     # return value / first argument
REG_A0 = 0
REG_A1 = 1
REG_A2 = 2
REG_S0 = 3     # callee saved
REG_S1 = 4     # callee saved
REG_FP = 5     # frame pointer (callee saved)
REG_SP = 6     # stack pointer
REG_LR = 7     # link register, written by CALL/CALLR

REG_NAMES = {i: f"R{i}" for i in range(NUM_GPRS)}
REG_ALIASES = {
    "SP": REG_SP,
    "LR": REG_LR,
    "FP": REG_FP,
}


class SpecialReg(enum.IntEnum):
    """Special (system) registers accessed via ``MFSR``/``MTSR``.

    ``RSYNC`` is the paper's dedicated base-address register for the
    checkpoint array in data memory.  ``COREID``/``NCORES`` expose the SPMD
    identity (the silicon wires these as constants per core).
    """

    RSYNC = 0
    IVEC = 1      # interrupt vector (instruction address)
    EPC = 2       # saved PC on interrupt entry
    STATUS = 3    # bit0 = interrupt enable
    COREID = 4    # read-only
    NCORES = 5    # read-only

STATUS_IE = 0x0001

READONLY_SREGS = frozenset({SpecialReg.COREID, SpecialReg.NCORES})

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------


class Opcode(enum.IntEnum):
    """Primary opcodes (5 bits, fully allocated)."""

    SYS = 0       # sub-operation in the rd field (NOP/HALT/SLEEP/RETI/EI/DI)
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    ADC = 6
    SBC = 7
    MUL = 8       # low 16 bits of the product
    MULH = 9      # high 16 bits of the signed product
    SLL = 10
    SRL = 11
    SRA = 12
    CMP = 13      # flags only
    MOV = 14
    MFSR = 15     # rd <- special[imm5]
    MTSR = 16     # special[imm5] <- rs
    ADDI = 17     # rd <- rs + simm5
    LDI = 18      # rd <- sext(imm8)
    LUI = 19      # rd <- imm8 << 8
    ORI = 20      # rd <- rd | imm8
    CMPI = 21     # flags(rd - simm5)
    SHI = 22      # shift-immediate, sub-op in bits [5:4]
    LD = 23       # rd <- DM[rs + simm5]
    ST = 24       # DM[rs + simm5] <- rd
    BCC = 25      # conditional branch, condition in rd field
    JMP = 26      # pc-relative, simm11
    CALL = 27     # LR <- pc+1 ; pc-relative simm11
    JR = 28       # pc <- rs
    CALLR = 29    # LR <- pc+1 ; pc <- rs
    SINC = 30     # check-in  (ISE, Dogan et al. sec. IV-B)
    SDEC = 31     # check-out (ISE, Dogan et al. sec. IV-B)


class SysOp(enum.IntEnum):
    """Sub-operations of :data:`Opcode.SYS`, carried in the rd field."""

    NOP = 0
    HALT = 1
    SLEEP = 2
    RETI = 3
    EI = 4
    DI = 5


class ShiftOp(enum.IntEnum):
    """Sub-operations of :data:`Opcode.SHI`, carried in bits [5:4]."""

    SLLI = 0
    SRLI = 1
    SRAI = 2


class Cond(enum.IntEnum):
    """Branch conditions, carried in the rd field of :data:`Opcode.BCC`.

    Carry uses the ARM-style "no borrow" convention for subtraction:
    ``CMP a, b`` sets C when ``a >= b`` unsigned.
    """

    EQ = 0   # Z
    NE = 1   # !Z
    LT = 2   # N != V        (signed <)
    GE = 3   # N == V        (signed >=)
    LE = 4   # Z or N != V   (signed <=)
    GT = 5   # !Z and N == V (signed >)
    LTU = 6  # !C            (unsigned <)
    GEU = 7  # C             (unsigned >=)


COND_NAMES = {c: c.name for c in Cond}

# ---------------------------------------------------------------------------
# Immediate field geometry
# ---------------------------------------------------------------------------

IMM5_MIN, IMM5_MAX = -16, 15
IMM8_MIN, IMM8_MAX = -128, 127
UIMM8_MAX = 255
#: JMP/CALL carry an absolute 11-bit instruction address (PIC-style GOTO);
#: SPMD kernels therefore live in the low 2 Ki instructions of IM bank 0,
#: which is exactly the single-image layout the paper's platform uses.
JUMP_TARGET_MAX = 2047
SHIFT_IMM_MAX = 15
SYNC_INDEX_MAX = 255

# ---------------------------------------------------------------------------
# Instruction taxonomy used by the assembler/encoder
# ---------------------------------------------------------------------------

#: opcodes encoded as rd, rs, rt (register triples)
R3_OPCODES = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.ADC, Opcode.SBC, Opcode.MUL, Opcode.MULH,
    Opcode.SLL, Opcode.SRL, Opcode.SRA,
})

#: opcodes encoded as rd, rs
R2_OPCODES = frozenset({Opcode.MOV, Opcode.CMP})

#: opcodes encoded as rd, rs, simm5
I5_OPCODES = frozenset({Opcode.ADDI, Opcode.LD, Opcode.ST})

#: opcodes encoded as rd, imm8
I8_OPCODES = frozenset({Opcode.LDI, Opcode.LUI, Opcode.ORI})

#: opcodes encoded as simm11
J_OPCODES = frozenset({Opcode.JMP, Opcode.CALL})

#: opcodes that read or write data memory
MEM_OPCODES = frozenset({Opcode.LD, Opcode.ST})

#: the synchronization ISE
SYNC_OPCODES = frozenset({Opcode.SINC, Opcode.SDEC})

#: opcodes that may change the PC to something other than pc+1
CTRL_OPCODES = frozenset({
    Opcode.BCC, Opcode.JMP, Opcode.CALL, Opcode.JR, Opcode.CALLR,
})


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement int."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def to_signed16(value: int) -> int:
    """Wrap an integer to the signed 16-bit range."""
    return sign_extend(value, WORD_BITS)


def to_unsigned16(value: int) -> int:
    """Wrap an integer to the unsigned 16-bit range."""
    return value & WORD_MASK
