"""Program images: the unit the loader places into platform memories.

A :class:`Program` couples the instruction stream (one entry per IM word)
with an initialized data segment, a symbol table and optional source-line
mapping.  Both the assembler and the minic compiler produce programs; the
platform loader consumes them.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

from .encoding import decode, encode
from .instruction import Instruction

_SOURCE_LINE_RE = re.compile(r"\(line (\d+)\)")


@dataclass(frozen=True, slots=True)
class DataBlock:
    """An initialized region of data memory.

    :param address: absolute DM word address of the first word.
    :param values: the 16-bit word values (unsigned representation).
    """

    address: int
    values: tuple[int, ...]

    @property
    def end(self) -> int:
        return self.address + len(self.values)


@dataclass(slots=True)
class Program:
    """An executable image for the multi-core platform.

    :param instructions: decoded instruction stream, index == IM address.
    :param data: initialized DM regions.
    :param symbols: label -> address (IM for code labels, DM for data labels).
    :param entry: IM address execution starts at.
    :param source_map: IM address -> human-readable origin (for diagnostics).
    """

    instructions: list[Instruction] = field(default_factory=list)
    data: list[DataBlock] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    source_map: dict[int, str] = field(default_factory=dict)
    #: IM address -> statically-proven LD/ST address shape (``0`` =
    #: core-uniform effective address, ``k`` = coreid-affine with stride
    #: ``k``).  Produced from ``;@mem=`` markers; consumed by the
    #: superblock builder to fuse across memory instructions.  Part of
    #: :meth:`digest` (versioned) so block caches invalidate correctly.
    mem_facts: dict[int, int] = field(default_factory=dict)
    #: IM address of a conditional branch -> :class:`Hammock` fact
    #: (see :mod:`repro.compiler.ifconv`): a short, side-effect-bounded
    #: if/else diamond the superblock builders may if-convert into a
    #: branch-free predicated block.  Stamped by the assembler; part of
    #: :meth:`digest` (versioned) so block caches invalidate correctly.
    hammocks: dict[int, tuple] = field(default_factory=dict)
    #: lazily-built predecoded dispatch records (see
    #: :func:`repro.cpu.predecode.predecode`); cached here so every
    #: machine running this image shares one compilation.
    _decode_cache: list | None = field(default=None, repr=False,
                                       compare=False)
    #: lazily-computed content digest (see :meth:`digest`)
    _digest_cache: str | None = field(default=None, repr=False,
                                      compare=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def line_of(self, pc: int) -> int | None:
        """Source line number of the instruction at ``pc``, if recorded.

        Parses the ``"MNEMONIC (line N)"`` convention both toolchains use
        when filling :attr:`source_map` — the anchor diagnostics tools
        (assembler errors, synclint) report to the programmer.
        """
        origin = self.source_map.get(pc)
        if not origin:
            return None
        match = _SOURCE_LINE_RE.search(origin)
        return int(match.group(1)) if match else None

    def predecoded(self) -> list:
        """Predecoded ``(kind, run)`` dispatch records, index == address.

        Compiled on first use and cached; the cache assumes the
        instruction stream is not mutated afterwards (program images are
        treated as immutable once loaded).
        """
        if self._decode_cache is None:
            from ..cpu.predecode import predecode

            self._decode_cache = predecode(self.instructions)
        return self._decode_cache

    def digest(self) -> str:
        """Content hash of the built image: code bits, entry, data, symbols.

        Two programs with equal digests load identically into platform
        memories, so anything derived purely from the image — predecoded
        records, fused superblocks, cached sweep results — may be shared
        between them.  Cached after the first call (images are treated as
        immutable once loaded).
        """
        if self._digest_cache is None:
            h = hashlib.sha256()
            h.update(self.to_binary())
            h.update(f"entry={self.entry};".encode())
            for block in self.data:
                h.update(f"@{block.address}:".encode())
                h.update(",".join(map(str, block.values)).encode())
            for name, address in sorted(self.symbols.items()):
                h.update(f"{name}={address};".encode())
            if self.mem_facts:
                # versioned so fact-free images keep their prior digests
                # while any change to the fact set (or its meaning)
                # invalidates derived block caches
                h.update(b"memfacts/v1;")
                for address, stride in sorted(self.mem_facts.items()):
                    h.update(f"{address}={stride};".encode())
            if self.hammocks:
                h.update(b"hammocks/v1;")
                for head, hm in sorted(self.hammocks.items()):
                    h.update(f"{head}:{hm.arm_start}+{hm.arm_len}"
                             f":{int(hm.arm_on_taken)}:{hm.join};"
                             .encode())
            self._digest_cache = h.hexdigest()
        return self._digest_cache

    def to_binary(self) -> bytes:
        """Encode the instruction stream as little-endian 16-bit words."""
        out = bytearray()
        for ins in self.instructions:
            word = encode(ins)
            out += word.to_bytes(2, "little")
        return bytes(out)

    @classmethod
    def from_binary(cls, blob: bytes, *, entry: int = 0) -> "Program":
        """Decode a binary image produced by :meth:`to_binary`."""
        if len(blob) % 2:
            raise ValueError("binary image must be an even number of bytes")
        instructions = [
            decode(int.from_bytes(blob[i:i + 2], "little"))
            for i in range(0, len(blob), 2)
        ]
        return cls(instructions=instructions, entry=entry)

    def listing(self) -> str:
        """Render a disassembly listing with addresses and symbols."""
        addr_labels: dict[int, list[str]] = {}
        for name, addr in self.symbols.items():
            addr_labels.setdefault(addr, []).append(name)
        lines = []
        for addr, ins in enumerate(self.instructions):
            for label in sorted(addr_labels.get(addr, ())):
                lines.append(f"{label}:")
            lines.append(f"  {addr:5d}  {ins}")
        return "\n".join(lines)
