"""Binary encoding and decoding of ``ulp16`` instructions.

Layout (16-bit words)::

    R3 :  [15:11 op][10:8 rd][7:5 rs][4:2 rt][1:0 0]
    R2 :  [15:11 op][10:8 rd][7:5 rs][4:0 0]
    I5 :  [15:11 op][10:8 rd][7:5 rs][4:0 simm5]      ADDI / LD / ST
    SR :  [15:11 op][10:8 rd][7:5 rs][4:0 imm5]       MFSR / MTSR
    I8 :  [15:11 op][10:8 rd][7:0 imm8]               LDI / LUI / ORI / CMPI*
    SHI:  [15:11 op][10:8 rd][7:6 0][5:4 sub][3:0 imm4]
    B  :  [15:11 op][10:8 cond][7:0 simm8]
    J  :  [15:11 op][10:0 uimm11]                     absolute target
    SYS:  [15:11 op][10:8 sub][7:0 0]
    SYN:  [15:11 op][10:8 0][7:0 imm8]                SINC / SDEC

``CMPI`` carries its 5-bit signed immediate in the low field like I5 (rs
unused).  Branch displacements are relative to ``pc + 1``; jump targets are
absolute instruction addresses.
"""

from __future__ import annotations

from .instruction import Instruction
from .spec import (
    Cond,
    Opcode,
    ShiftOp,
    SysOp,
    sign_extend,
    R3_OPCODES,
    I8_OPCODES,
    J_OPCODES,
    SYNC_OPCODES,
    IMM5_MIN,
    IMM5_MAX,
    IMM8_MIN,
    IMM8_MAX,
    UIMM8_MAX,
    JUMP_TARGET_MAX,
    SHIFT_IMM_MAX,
    SYNC_INDEX_MAX,
    NUM_GPRS,
)


class EncodingError(ValueError):
    """An operand does not fit its encoding field."""


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value < NUM_GPRS:
        raise EncodingError(f"{what} out of range: {value}")
    return value


def _check_range(value: int, lo: int, hi: int, what: str) -> int:
    if not lo <= value <= hi:
        raise EncodingError(f"{what} {value} outside [{lo}, {hi}]")
    return value


def encode(ins: Instruction) -> int:
    """Encode a decoded instruction into its 16-bit binary word."""
    op = ins.op
    word = (int(op) & 0x1F) << 11

    if op is Opcode.SYS:
        SysOp(ins.sub)
        return word | (ins.sub & 0x7) << 8

    if op in R3_OPCODES:
        _check_reg(ins.rd, "rd")
        _check_reg(ins.rs, "rs")
        _check_reg(ins.rt, "rt")
        return word | ins.rd << 8 | ins.rs << 5 | ins.rt << 2

    if op in (Opcode.MOV, Opcode.CMP):
        _check_reg(ins.rd, "rd")
        _check_reg(ins.rs, "rs")
        return word | ins.rd << 8 | ins.rs << 5

    if op in (Opcode.MFSR, Opcode.MTSR):
        _check_reg(ins.rd, "rd")
        _check_reg(ins.rs, "rs")
        _check_range(ins.imm, 0, 31, "special register index")
        return word | ins.rd << 8 | ins.rs << 5 | (ins.imm & 0x1F)

    if op in (Opcode.ADDI, Opcode.LD, Opcode.ST):
        _check_reg(ins.rd, "rd")
        _check_reg(ins.rs, "rs")
        _check_range(ins.imm, IMM5_MIN, IMM5_MAX, "simm5")
        return word | ins.rd << 8 | ins.rs << 5 | (ins.imm & 0x1F)

    if op is Opcode.CMPI:
        _check_reg(ins.rd, "rd")
        _check_range(ins.imm, IMM5_MIN, IMM5_MAX, "simm5")
        return word | ins.rd << 8 | (ins.imm & 0x1F)

    if op in I8_OPCODES:
        _check_reg(ins.rd, "rd")
        if op is Opcode.LDI:
            _check_range(ins.imm, IMM8_MIN, IMM8_MAX, "simm8")
        else:
            _check_range(ins.imm, 0, UIMM8_MAX, "uimm8")
        return word | ins.rd << 8 | (ins.imm & 0xFF)

    if op is Opcode.SHI:
        _check_reg(ins.rd, "rd")
        ShiftOp(ins.sub)
        _check_range(ins.imm, 0, SHIFT_IMM_MAX, "shift amount")
        return word | ins.rd << 8 | (ins.sub & 0x3) << 4 | (ins.imm & 0xF)

    if op is Opcode.BCC:
        Cond(ins.cond)
        _check_range(ins.imm, IMM8_MIN, IMM8_MAX, "branch displacement")
        return word | int(ins.cond) << 8 | (ins.imm & 0xFF)

    if op in J_OPCODES:
        _check_range(ins.imm, 0, JUMP_TARGET_MAX, "jump target")
        return word | (ins.imm & 0x7FF)

    if op in (Opcode.JR, Opcode.CALLR):
        _check_reg(ins.rs, "rs")
        return word | ins.rs << 5

    if op in SYNC_OPCODES:
        _check_range(ins.imm, 0, SYNC_INDEX_MAX, "sync index")
        return word | (ins.imm & 0xFF)

    raise EncodingError(f"unencodable opcode {op!r}")


def decode(word: int) -> Instruction:
    """Decode a 16-bit binary word into an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFF:
        raise EncodingError(f"instruction word out of range: {word:#x}")
    op = Opcode((word >> 11) & 0x1F)
    rd = (word >> 8) & 0x7
    rs = (word >> 5) & 0x7
    rt = (word >> 2) & 0x7

    if op is Opcode.SYS:
        return Instruction(op, sub=SysOp(rd))
    if op in R3_OPCODES:
        return Instruction(op, rd=rd, rs=rs, rt=rt)
    if op in (Opcode.MOV, Opcode.CMP):
        return Instruction(op, rd=rd, rs=rs)
    if op in (Opcode.MFSR, Opcode.MTSR):
        return Instruction(op, rd=rd, rs=rs, imm=word & 0x1F)
    if op in (Opcode.ADDI, Opcode.LD, Opcode.ST):
        return Instruction(op, rd=rd, rs=rs, imm=sign_extend(word, 5))
    if op is Opcode.CMPI:
        return Instruction(op, rd=rd, imm=sign_extend(word, 5))
    if op is Opcode.LDI:
        return Instruction(op, rd=rd, imm=sign_extend(word, 8))
    if op in (Opcode.LUI, Opcode.ORI):
        return Instruction(op, rd=rd, imm=word & 0xFF)
    if op is Opcode.SHI:
        return Instruction(op, rd=rd, sub=ShiftOp((word >> 4) & 0x3),
                           imm=word & 0xF)
    if op is Opcode.BCC:
        return Instruction(op, cond=Cond(rd), imm=sign_extend(word, 8))
    if op in J_OPCODES:
        return Instruction(op, imm=word & 0x7FF)
    if op in (Opcode.JR, Opcode.CALLR):
        return Instruction(op, rs=rs)
    if op in SYNC_OPCODES:
        return Instruction(op, imm=word & 0xFF)
    raise EncodingError(f"undecodable opcode {op!r}")  # pragma: no cover
