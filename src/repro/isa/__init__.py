"""The ``ulp16`` instruction-set architecture.

Public surface: the ISA constants (:mod:`~repro.isa.spec`), the
:class:`~repro.isa.instruction.Instruction` record, binary
:func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`,
the :func:`~repro.isa.assembler.assemble` entry point and
:class:`~repro.isa.program.Program` images.
"""

from .assembler import Assembler, AssemblyError, assemble
from .disassembler import disassemble, disassemble_word
from .encoding import EncodingError, decode, encode
from .instruction import Instruction
from .program import DataBlock, Program
from .spec import Cond, Opcode, ShiftOp, SpecialReg, SysOp

__all__ = [
    "Assembler",
    "AssemblyError",
    "Cond",
    "DataBlock",
    "EncodingError",
    "Instruction",
    "Opcode",
    "Program",
    "ShiftOp",
    "SpecialReg",
    "SysOp",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_word",
    "encode",
]
